package faults

import (
	"reflect"
	"testing"

	"harmonia/internal/sim"
)

func TestStormDeterministic(t *testing.T) {
	spec := DefaultStorm(300, 42)
	a, err := Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("same spec produced different schedules")
	}
	c, err := Storm(DefaultStorm(300, 43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Injections, c.Injections) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestStormValidation(t *testing.T) {
	if _, err := Storm(StormSpec{}); err == nil {
		t.Error("empty spec accepted")
	}
	spec := DefaultStorm(4, 1)
	spec.RackSize = 10
	if _, err := Storm(spec); err == nil {
		t.Error("rack larger than fleet accepted")
	}
}

func TestStormRackIsCorrelated(t *testing.T) {
	spec := DefaultStorm(300, 7)
	s, err := Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rack) != spec.RackSize {
		t.Fatalf("rack has %d nodes, want %d", len(s.Rack), spec.RackSize)
	}
	// The rack is contiguous and every kill lands inside one heartbeat
	// window — the monitor must see a correlated burst, not a trickle.
	for i := 1; i < len(s.Rack); i++ {
		if s.Rack[i] != s.Rack[i-1]+1 {
			t.Fatalf("rack not contiguous: %v", s.Rack)
		}
	}
	lo := spec.Start + spec.RackAt
	hi := lo + spec.RackWindow
	kills := 0
	for _, inj := range s.Injections {
		if inj.Kind != KillNode {
			continue
		}
		kills++
		if inj.At < lo || inj.At >= hi {
			t.Errorf("kill at %v outside window [%v,%v)", inj.At, lo, hi)
		}
	}
	if kills != len(s.Rack) {
		t.Errorf("%d kills for a %d-node rack", kills, len(s.Rack))
	}
}

func TestStormTargetSetsDisjoint(t *testing.T) {
	s, err := Storm(DefaultStorm(300, 9))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]string)
	for _, set := range []struct {
		name  string
		nodes []int
	}{{"rack", s.Rack}, {"flap", s.Flapped}, {"thermal", s.Ramped}, {"corrupt", s.Corrupted}} {
		for _, n := range set.nodes {
			if prev, dup := seen[n]; dup {
				t.Errorf("node %d targeted by both %s and %s", n, prev, set.name)
			}
			seen[n] = set.name
		}
	}
	if len(s.Flapped) == 0 || len(s.Ramped) == 0 || len(s.Corrupted) == 0 {
		t.Errorf("default storm left a family empty: flap=%d thermal=%d corrupt=%d",
			len(s.Flapped), len(s.Ramped), len(s.Corrupted))
	}
}

func TestStormInjectionsSorted(t *testing.T) {
	s, err := Storm(DefaultStorm(120, 3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(s.Injections); i++ {
		if s.Injections[i].At < s.Injections[i-1].At {
			t.Fatalf("injection %d at %v precedes %d at %v",
				i, s.Injections[i].At, i-1, s.Injections[i-1].At)
		}
	}
	if end := s.End(); end != s.Injections[len(s.Injections)-1].At {
		t.Errorf("End() = %v, want last injection time", end)
	}
}

func TestStormFlapsPairDownUp(t *testing.T) {
	spec := DefaultStorm(300, 11)
	s, err := Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	downs := make(map[int]int)
	ups := make(map[int]int)
	for _, inj := range s.Injections {
		switch inj.Kind {
		case LinkDown:
			downs[inj.Node]++
		case LinkUp:
			ups[inj.Node]++
		}
	}
	for _, n := range s.Flapped {
		if downs[n] != spec.Flaps || ups[n] != spec.Flaps {
			t.Errorf("node %d: %d downs / %d ups, want %d each", n, downs[n], ups[n], spec.Flaps)
		}
	}
}

func TestThermalRampReachesAlarmThenCools(t *testing.T) {
	spec := DefaultStorm(300, 5)
	s, err := Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	node := s.Ramped[0]
	var last Injection
	var peak uint32
	for _, inj := range s.Injections {
		if inj.Kind != ThermalSet || inj.Node != node {
			continue
		}
		if inj.Arg > peak {
			peak = inj.Arg
		}
		last = inj
	}
	// A default fleet node idles around 45°C with a 95°C degrade line:
	// the peak offset must push it past the alarm.
	if peak < 50_000 {
		t.Errorf("peak thermal offset %d milli-degC cannot reach an alarm", peak)
	}
	if last.Arg != 0 {
		t.Errorf("ramp never cools: final ThermalSet arg = %d", last.Arg)
	}
	if last.At != spec.Start+spec.ThermalCoolAt {
		t.Errorf("cooldown at %v, want %v", last.At, spec.Start+spec.ThermalCoolAt)
	}
}

func TestLoadFailureFnDeterministicAndOrderFree(t *testing.T) {
	fn := LoadFailureFn(99, 0.5)
	// Same arguments, same verdict — regardless of interleaved calls.
	first := fn("node-03", "tenant-a", 0)
	fn("node-07", "tenant-b", 2)
	fn("node-03", "tenant-a", 1)
	if fn("node-03", "tenant-a", 0) != first {
		t.Error("verdict changed across calls with identical arguments")
	}
	// The failure rate tracks p.
	fail := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if fn("node-00", "t", i) {
			fail++
		}
	}
	if frac := float64(fail) / trials; frac < 0.4 || frac > 0.6 {
		t.Errorf("failure fraction %.3f far from p=0.5", frac)
	}
	if none := LoadFailureFn(99, 0); none("n", "t", 0) {
		t.Error("p=0 produced a failure")
	}
}

func TestStormStartOffsetsWholeSchedule(t *testing.T) {
	spec := DefaultStorm(60, 21)
	base, err := Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Start = 5 * sim.Millisecond
	late, err := Storm(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Injections) != len(late.Injections) {
		t.Fatalf("shifted storm changed injection count: %d vs %d",
			len(base.Injections), len(late.Injections))
	}
	for i := range base.Injections {
		want := base.Injections[i]
		want.At += 5 * sim.Millisecond
		if late.Injections[i] != want {
			t.Fatalf("injection %d: %v, want %v", i, late.Injections[i], want)
		}
	}
}
