// Package faults is the deterministic chaos plane: it generates
// seeded, discrete-event schedules of *correlated* failures for the
// fleet simulation. Where the single-fault drills (fleet2/fleet4) kill
// exactly one node, a storm models how cloud FPGA fleets actually fail
// — a rack power event takes N nodes inside one heartbeat window, a
// link flaps repeatedly, partial-bitstream loads fail under pressure,
// a cooling failure ramps a die into thermal alarm, and a marginal
// cable corrupts command packets in bursts.
//
// Everything is derived from one seed: Storm expands a StormSpec into
// a flat, time-sorted injection list, every injection tagged with its
// time, so any run — and any side-by-side comparison of defenses over
// the same storm — reproduces from a single line. The package knows
// nothing about the fleet; injections target node *indexes* and the
// drill maps them onto commissioned devices.
package faults

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"

	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// Kind classifies one injection.
type Kind string

// The fault taxonomy.
const (
	// KillNode silently kills a device: its command wire corrupts on
	// every attempt, so it stops answering heartbeats (rack power loss).
	KillNode Kind = "kill"
	// LinkDown severs a device's network link (irq-path EventLinkDown);
	// LinkUp restores it — a drained device rejoins the fleet empty.
	LinkDown Kind = "link-down"
	LinkUp   Kind = "link-up"
	// ThermalSet injects a die-temperature offset (Arg, milli-degC);
	// ramps issue a staircase of these until the alarm threshold.
	ThermalSet Kind = "thermal-set"
	// CorruptStart corrupts the first Arg attempts of every command on
	// the node's wire until CorruptEnd — retransmissions without loss
	// when Arg stays within the driver's retry budget.
	CorruptStart Kind = "corrupt-start"
	CorruptEnd   Kind = "corrupt-end"
	// PRFaultStart makes partial-bitstream loads fail fleet-wide with
	// probability Prob until PRFaultEnd.
	PRFaultStart Kind = "pr-fault-start"
	PRFaultEnd   Kind = "pr-fault-end"
	// DrainBackend removes backend #Arg from the stateful service's
	// pool mid-storm, so re-pinned flows can land on different backends
	// than established ones — what makes flow disruption measurable.
	DrainBackend Kind = "drain-backend"

	// Migration-targeted injections: each arms a one-shot latch in the
	// cluster that fires when the *next* rebalance move reaches the
	// matching phase, so the fault lands mid-migration deterministically
	// regardless of when the move was planned. Node is ignored (-1): the
	// move's own source/target are the victims.
	//
	// RebalanceKillSource kills the move's source node the moment
	// pre-copy starts — the table read fails, retries exhaust, and the
	// health monitor independently fails the node over via the
	// snapshot-fallback path.
	RebalanceKillSource Kind = "rebalance-kill-source"
	// RebalanceKillTarget kills the move's target node before cutover —
	// the delta writes fail and the move aborts back to the
	// still-serving source.
	RebalanceKillTarget Kind = "rebalance-kill-target"
	// RebalanceCorruptDelta flips one word of the next delta frame in
	// transit, forcing a decode error on import and a bounded retry with
	// a clean resend.
	RebalanceCorruptDelta Kind = "rebalance-corrupt-delta"
	// RebalanceStallRead stalls the next pre-copy TableRead past the
	// phase timeout, burning one retry attempt.
	RebalanceStallRead Kind = "rebalance-stall-read"
)

// Injection is one scheduled fault. Node is a commission index into
// the fleet (-1 for fleet-wide faults); Arg and Prob are
// kind-specific parameters.
type Injection struct {
	At   sim.Time
	Kind Kind
	Node int
	Arg  uint32
	Prob float64
}

// String formats an injection for operator logs.
func (i Injection) String() string {
	switch i.Kind {
	case ThermalSet, CorruptStart, DrainBackend:
		return fmt.Sprintf("%v %s node=%d arg=%d", i.At, i.Kind, i.Node, i.Arg)
	case PRFaultStart:
		return fmt.Sprintf("%v %s p=%.2f", i.At, i.Kind, i.Prob)
	case PRFaultEnd:
		return fmt.Sprintf("%v %s", i.At, i.Kind)
	case RebalanceKillSource, RebalanceKillTarget, RebalanceCorruptDelta, RebalanceStallRead:
		return fmt.Sprintf("%v %s (latched)", i.At, i.Kind)
	default:
		return fmt.Sprintf("%v %s node=%d", i.At, i.Kind, i.Node)
	}
}

// StormSpec shapes one correlated failure storm. Zero values disable
// the corresponding fault family.
type StormSpec struct {
	// Nodes is the fleet size the schedule targets.
	Nodes int
	// Seed drives every random choice (targets, jitter).
	Seed int64
	// Start is the storm's absolute start time on the cluster clock.
	Start sim.Time

	// RackSize groups nodes into contiguous racks of this many; the
	// power event takes one whole rack.
	RackSize int
	// RackAt is the power event's offset from Start; the individual
	// node deaths spread over RackWindow (one heartbeat window, so the
	// monitor sees them as one correlated burst).
	RackAt     sim.Time
	RackWindow sim.Time

	// FlapNodes links flap: each goes down/up Flaps times, FlapGap
	// apart, starting at Start.
	FlapNodes int
	Flaps     int
	FlapGap   sim.Time

	// ThermalNodes ramp: ThermalStep milli-degC every ThermalEvery,
	// ThermalSteps times (a runaway climbing past the alarm), cooling
	// back to nominal at ThermalCoolAt (offset from Start; 0 = never).
	ThermalNodes  int
	ThermalStep   uint32
	ThermalEvery  sim.Time
	ThermalSteps  int
	ThermalCoolAt sim.Time

	// CorruptNodes get a command-corruption burst: the first
	// CorruptAttempts attempts of every command corrupt for CorruptFor.
	CorruptNodes    int
	CorruptAttempts int
	CorruptFor      sim.Time

	// PRFailProb makes bitstream loads fail with this probability for
	// PRFailFor — pressure on exactly the path mass failover leans on.
	PRFailProb float64
	PRFailFor  sim.Time

	// DrainBackendAt (offset from Start, 0 = never) removes
	// DrainBackendIdx from the stateful backend pool.
	DrainBackendAt  sim.Time
	DrainBackendIdx int
}

// DefaultStorm returns the fleet5 storm script scaled to a fleet size:
// one rack lost to power, link flaps, thermal runaways, command
// corruption bursts, fleet-wide PR-load failures and a mid-storm
// backend drain.
func DefaultStorm(nodes int, seed int64) StormSpec {
	rackSize := nodes / 15
	if rackSize < 2 {
		rackSize = 2
	}
	atLeast := func(n int) int {
		if n < 1 {
			return 1
		}
		return n
	}
	return StormSpec{
		Nodes: nodes,
		Seed:  seed,

		RackSize:   rackSize,
		RackAt:     50 * sim.Microsecond,
		RackWindow: 50 * sim.Microsecond,

		FlapNodes: atLeast(nodes / 50),
		Flaps:     2,
		FlapGap:   200 * sim.Microsecond,

		ThermalNodes:  atLeast(nodes / 75),
		ThermalStep:   6_000,
		ThermalEvery:  50 * sim.Microsecond,
		ThermalSteps:  10,
		ThermalCoolAt: 1500 * sim.Microsecond,

		CorruptNodes:    atLeast(nodes / 40),
		CorruptAttempts: 2,
		CorruptFor:      300 * sim.Microsecond,

		PRFailProb: 0.25,
		PRFailFor:  6 * sim.Millisecond,

		DrainBackendAt:  100 * sim.Microsecond,
		DrainBackendIdx: 0,
	}
}

// Schedule is one expanded storm: the injection list, time-sorted,
// plus the seed that reproduces it.
type Schedule struct {
	Seed int64
	Spec StormSpec
	// Injections is sorted by (At, Node, Kind) — a total, deterministic
	// order.
	Injections []Injection
	// Rack is the node index set the power event kills; Flapped,
	// Ramped and Corrupted are the other target sets, for the drill's
	// per-family measurements.
	Rack, Flapped, Ramped, Corrupted []int
}

// Storm expands a spec into a deterministic schedule. Target sets are
// disjoint: the rack is drawn first, then flap/thermal/corrupt targets
// from the remaining nodes, so each fault family's effect is
// measurable on its own.
func Storm(spec StormSpec) (*Schedule, error) {
	if spec.Nodes <= 0 {
		return nil, fmt.Errorf("faults: storm needs a fleet size, got %d", spec.Nodes)
	}
	if spec.RackSize > 0 && spec.RackSize > spec.Nodes {
		return nil, fmt.Errorf("faults: rack of %d exceeds the %d-node fleet", spec.RackSize, spec.Nodes)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	s := &Schedule{Seed: spec.Seed, Spec: spec}

	taken := make(map[int]bool)
	// Rack power loss: one contiguous rack, deaths jittered inside the
	// heartbeat window.
	if spec.RackSize > 0 {
		racks := spec.Nodes / spec.RackSize
		if racks == 0 {
			racks = 1
		}
		rack := rng.Intn(racks)
		for i := 0; i < spec.RackSize; i++ {
			node := rack*spec.RackSize + i
			if node >= spec.Nodes {
				break
			}
			taken[node] = true
			s.Rack = append(s.Rack, node)
			at := spec.Start + spec.RackAt
			if spec.RackWindow > 0 {
				at += sim.Time(rng.Int63n(int64(spec.RackWindow)))
			}
			s.add(Injection{At: at, Kind: KillNode, Node: node})
		}
	}

	// The remaining families draw disjoint targets from the survivors.
	pick := func(count int) []int {
		var out []int
		for _, node := range rng.Perm(spec.Nodes) {
			if len(out) == count {
				break
			}
			if taken[node] {
				continue
			}
			taken[node] = true
			out = append(out, node)
		}
		sort.Ints(out)
		return out
	}

	s.Flapped = pick(spec.FlapNodes)
	for _, node := range s.Flapped {
		at := spec.Start + sim.Time(rng.Int63n(int64(spec.FlapGap)+1))
		for f := 0; f < spec.Flaps; f++ {
			s.add(Injection{At: at, Kind: LinkDown, Node: node})
			at += spec.FlapGap
			s.add(Injection{At: at, Kind: LinkUp, Node: node})
			at += spec.FlapGap
		}
	}

	s.Ramped = pick(spec.ThermalNodes)
	for _, node := range s.Ramped {
		for step := 1; step <= spec.ThermalSteps; step++ {
			s.add(Injection{
				At:   spec.Start + sim.Time(step)*spec.ThermalEvery,
				Kind: ThermalSet, Node: node,
				Arg: spec.ThermalStep * uint32(step),
			})
		}
		if spec.ThermalCoolAt > 0 {
			s.add(Injection{At: spec.Start + spec.ThermalCoolAt, Kind: ThermalSet, Node: node, Arg: 0})
		}
	}

	s.Corrupted = pick(spec.CorruptNodes)
	for _, node := range s.Corrupted {
		at := spec.Start + sim.Time(rng.Int63n(int64(spec.CorruptFor)/2+1))
		s.add(Injection{At: at, Kind: CorruptStart, Node: node, Arg: uint32(spec.CorruptAttempts)})
		s.add(Injection{At: at + spec.CorruptFor, Kind: CorruptEnd, Node: node})
	}

	if spec.PRFailProb > 0 {
		s.add(Injection{At: spec.Start, Kind: PRFaultStart, Node: -1, Prob: spec.PRFailProb})
		s.add(Injection{At: spec.Start + spec.PRFailFor, Kind: PRFaultEnd, Node: -1})
	}
	if spec.DrainBackendAt > 0 {
		s.add(Injection{
			At: spec.Start + spec.DrainBackendAt, Kind: DrainBackend,
			Node: -1, Arg: uint32(spec.DrainBackendIdx),
		})
	}

	sort.SliceStable(s.Injections, func(i, j int) bool {
		a, b := s.Injections[i], s.Injections[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		return a.Kind < b.Kind
	})
	return s, nil
}

func (s *Schedule) add(inj Injection) { s.Injections = append(s.Injections, inj) }

// Trace records the planned schedule onto a trace track as instant
// events — the storm script a Perfetto view shows alongside what the
// drill actually applied. Nil-safe like every obs recording call.
func (s *Schedule) Trace(b *obs.Buffer) {
	for _, inj := range s.Injections {
		e := obs.Instant(obs.CatFault, "plan:"+string(inj.Kind), inj.At)
		e.K2, e.V2 = "node", int64(inj.Node)
		e.K3, e.V3 = "arg", int64(inj.Arg)
		b.Add(e)
	}
}

// Window reports the scheduled injections with from <= At <= to, in
// schedule order — the attribution query the postmortem engine asks
// ("which faults were live inside this alert's lookback window?").
func (s *Schedule) Window(from, to sim.Time) []Injection {
	var out []Injection
	for _, inj := range s.Injections {
		if inj.At >= from && inj.At <= to {
			out = append(out, inj)
		}
	}
	return out
}

// CausalEvents renders the whole schedule as ground-truth causal
// events for the postmortem engine. subject maps a target node index
// to its fleet ID ("" for fleet-wide injections); nil uses the raw
// index.
func (s *Schedule) CausalEvents(subject func(node int) string) []obs.CausalEvent {
	out := make([]obs.CausalEvent, 0, len(s.Injections))
	for _, inj := range s.Injections {
		sub := ""
		if inj.Node >= 0 {
			if subject != nil {
				sub = subject(inj.Node)
			} else {
				sub = fmt.Sprintf("node-%d", inj.Node)
			}
		}
		detail := ""
		switch inj.Kind {
		case ThermalSet, CorruptStart, DrainBackend:
			detail = fmt.Sprintf("arg=%d", inj.Arg)
		case PRFaultStart:
			detail = fmt.Sprintf("p=%.2f", inj.Prob)
		}
		out = append(out, obs.CausalEvent{
			At: inj.At, Kind: string(inj.Kind), Subject: sub,
			Detail: detail, Scheduled: true,
		})
	}
	return out
}

// End reports the time of the last injection.
func (s *Schedule) End() sim.Time {
	var end sim.Time
	for _, inj := range s.Injections {
		if inj.At > end {
			end = inj.At
		}
	}
	return end
}

// LoadFailureFn builds the deterministic PR-load fault predicate for
// PRFaultStart windows: whether one bitstream load attempt fails
// depends only on (seed, node, tenant, attempt) — never on call order —
// so every case of a side-by-side drill sees identical load faults,
// and an attempt that failed once fails on replay.
func LoadFailureFn(seed int64, p float64) func(node, tenant string, attempt int) bool {
	return func(node, tenant string, attempt int) bool {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d|%s|%s|%d", seed, node, tenant, attempt)
		return float64(h.Sum64()%1_000_000)/1_000_000 < p
	}
}
