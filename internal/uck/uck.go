// Package uck implements Harmonia's unified control kernel (§3.3.3):
// the software running on a lightweight soft core inside the FPGA that
// centralizes command execution. Commands arrive in a bounded buffer,
// are parsed by their length fields, executed sequentially — each
// command code defines its own processing logic — and answered with
// response packets routed back by source ID.
//
// Crucially, platform-specific register sequences live *here*, next to
// the hardware: the host issues behavior-level commands (module-init,
// table-write, ...) and the kernel runs whatever register choreography
// this platform's modules need — the mechanism that removes the ad-hoc
// host-software modifications of Fig. 3d.
package uck

import (
	"fmt"

	"harmonia/internal/cmdif"
	"harmonia/internal/sim"
)

// Module status values (the status register at address 0).
const (
	StatusReset uint32 = iota
	StatusInitializing
	StatusReady
	StatusError
)

// Module is one controllable hardware module instance: a register file,
// tables, and the platform-specific initialization sequence.
type Module struct {
	name string
	regs map[uint32]uint32
	// initSeq is the register choreography ModuleInit runs; platforms
	// differ here (Fig. 3d) but hosts never see it.
	initSeq []RegOp
	tables  map[uint32]map[uint32][]uint32
	// Dynamic tables: live module state exposed through the ordinary
	// TableRead/TableWrite codes. A source serves reads for one tableID
	// from the module's running datapath (instead of the stored rows);
	// a sink accepts writes into it. This is how bulk state — e.g. an
	// LB connection table — migrates over the command path without a
	// new command code.
	tableSources map[uint32]func(index uint32) ([]uint32, bool)
	tableSinks   map[uint32]func(index uint32, entry []uint32) error
	statsFn      func() []uint32
	inits   int64
	resets  int64
	// regOps counts register accesses the kernel performed on this
	// module — the work commands abstract away from the host.
	regOps int64
	// flash models the module's configuration flash: sector -> erased.
	flash        map[uint32]bool
	flashSectors uint32
	// eventSink receives latency-critical events (the irq unified type
	// of §3.2): raised signals bypass the command path entirely.
	eventSink func(code, data uint32)
}

// RegOpKind distinguishes register operations.
type RegOpKind int

// Register operation kinds.
const (
	OpWrite RegOpKind = iota
	OpRead
	// OpWait polls a register until it equals the value (the shell-A
	// style init of Fig. 3d).
	OpWait
)

// RegOp is one register-level step.
type RegOp struct {
	Kind  RegOpKind
	Addr  uint32
	Value uint32
}

// StatusAddr is the conventional status register address.
const StatusAddr uint32 = 0

// NewModule returns a module named name with the given init sequence.
func NewModule(name string, initSeq []RegOp) *Module {
	return &Module{
		name:    name,
		regs:    map[uint32]uint32{StatusAddr: StatusReset},
		initSeq: initSeq,
		tables:  make(map[uint32]map[uint32][]uint32),
	}
}

// EnableFlash attaches a configuration flash of the given sector count
// (management modules carry one for bitstream storage).
func (m *Module) EnableFlash(sectors uint32) {
	m.flash = make(map[uint32]bool)
	m.flashSectors = sectors
}

// FlashErased reports whether a sector has been erased.
func (m *Module) FlashErased(sector uint32) bool { return m.flash[sector] }

// SetEventSink wires the module's irq output; RaiseEvent delivers
// through it.
func (m *Module) SetEventSink(fn func(code, data uint32)) { m.eventSink = fn }

// RaiseEvent fires a latency-critical signal (link down, thermal alarm,
// parity error) toward the host, bypassing command execution.
func (m *Module) RaiseEvent(code, data uint32) {
	if m.eventSink != nil {
		m.eventSink(code, data)
	}
}

// Name reports the module name.
func (m *Module) Name() string { return m.name }

// SetStatsFn installs the monitoring read callback.
func (m *Module) SetStatsFn(fn func() []uint32) { m.statsFn = fn }

// SetTableSource binds fn to serve TableRead for tableID from live
// module state; a nil fn removes the binding. Sourced tables shadow any
// stored rows with the same ID.
func (m *Module) SetTableSource(tableID uint32, fn func(index uint32) ([]uint32, bool)) {
	if m.tableSources == nil {
		m.tableSources = make(map[uint32]func(uint32) ([]uint32, bool))
	}
	if fn == nil {
		delete(m.tableSources, tableID)
		return
	}
	m.tableSources[tableID] = fn
}

// SetTableSink binds fn to accept TableWrite for tableID into live
// module state; a nil fn removes the binding.
func (m *Module) SetTableSink(tableID uint32, fn func(index uint32, entry []uint32) error) {
	if m.tableSinks == nil {
		m.tableSinks = make(map[uint32]func(uint32, []uint32) error)
	}
	if fn == nil {
		delete(m.tableSinks, tableID)
		return
	}
	m.tableSinks[tableID] = fn
}

// RegWrite writes a register.
func (m *Module) RegWrite(addr, val uint32) {
	m.regs[addr] = val
	m.regOps++
}

// RegRead reads a register.
func (m *Module) RegRead(addr uint32) uint32 {
	m.regOps++
	return m.regs[addr]
}

// Status reports the module status register.
func (m *Module) Status() uint32 { return m.regs[StatusAddr] }

// RegOps reports how many register accesses the kernel performed.
func (m *Module) RegOps() int64 { return m.regOps }

// Inits and Resets report lifecycle counts.
func (m *Module) Inits() int64 { return m.inits }

// Resets reports how many times the module was reset.
func (m *Module) Resets() int64 { return m.resets }

// Table returns the entries at (tableID, index).
func (m *Module) Table(tableID, index uint32) ([]uint32, bool) {
	t, ok := m.tables[tableID]
	if !ok {
		return nil, false
	}
	e, ok := t[index]
	return e, ok
}

// runInit executes the platform-specific init choreography.
func (m *Module) runInit() int {
	m.RegWrite(StatusAddr, StatusInitializing)
	steps := 1
	for _, op := range m.initSeq {
		steps++
		switch op.Kind {
		case OpWrite:
			m.RegWrite(op.Addr, op.Value)
		case OpRead:
			m.RegRead(op.Addr)
		case OpWait:
			// In the functional model waits complete immediately; the
			// kernel charges poll cycles in its timing model.
			m.RegRead(op.Addr)
		}
	}
	m.RegWrite(StatusAddr, StatusReady)
	m.inits++
	return steps + 1
}

// Handler implements one command code against a module. It returns the
// response payload and the number of register operations performed
// (used for timing).
type Handler func(m *Module, p *cmdif.Packet) (data []uint32, regOps int, err error)

// Kernel is the unified control kernel.
type Kernel struct {
	clk      *sim.Clock
	buffer   []*cmdif.Packet
	depth    int
	modules  map[[2]uint8]*Module
	handlers map[cmdif.Code]Handler
	executed int64
	busy     sim.Time
	// execAt is the start time of the command being executed, read by
	// the time-count handler.
	execAt sim.Time
}

// Soft-core execution cost model (Nios-class core at 200 MHz).
const (
	parseCyclesPerWord = 4
	baseExecCycles     = 40
	cyclesPerRegOp     = 6
)

// NewKernel returns a kernel with the given command buffer depth
// (configurable, §3.3.3) and the built-in handler set.
func NewKernel(bufferDepth int) (*Kernel, error) {
	if bufferDepth <= 0 {
		return nil, fmt.Errorf("uck: buffer depth %d must be positive", bufferDepth)
	}
	k := &Kernel{
		clk:      sim.NewClock("uck", 200),
		depth:    bufferDepth,
		modules:  make(map[[2]uint8]*Module),
		handlers: make(map[cmdif.Code]Handler),
	}
	k.handlers[cmdif.StatusRead] = handleStatusRead
	k.handlers[cmdif.StatusWrite] = handleStatusWrite
	k.handlers[cmdif.ModuleInit] = handleModuleInit
	k.handlers[cmdif.ModuleReset] = handleModuleReset
	k.handlers[cmdif.TableWrite] = handleTableWrite
	k.handlers[cmdif.TableRead] = handleTableRead
	k.handlers[cmdif.StatsRead] = handleStatsRead
	k.handlers[cmdif.FlashErase] = handleFlashErase
	k.handlers[cmdif.TimeCount] = k.handleTimeCount
	return k, nil
}

// Register binds a module to (rbbID, instanceID).
func (k *Kernel) Register(rbbID, instanceID uint8, m *Module) error {
	key := [2]uint8{rbbID, instanceID}
	if _, dup := k.modules[key]; dup {
		return fmt.Errorf("uck: module %d/%d already registered", rbbID, instanceID)
	}
	if m == nil {
		return fmt.Errorf("uck: nil module")
	}
	k.modules[key] = m
	return nil
}

// Module returns the module bound to (rbbID, instanceID).
func (k *Kernel) Module(rbbID, instanceID uint8) (*Module, bool) {
	m, ok := k.modules[[2]uint8{rbbID, instanceID}]
	return m, ok
}

// Extend installs a handler for a new command code — the extensibility
// hook for new hardware modules (e.g. i2c) and software tools.
func (k *Kernel) Extend(code cmdif.Code, h Handler) error {
	if _, dup := k.handlers[code]; dup {
		return fmt.Errorf("uck: handler for %v already installed", code)
	}
	if h == nil {
		return fmt.Errorf("uck: nil handler")
	}
	k.handlers[code] = h
	return nil
}

// Submit buffers a command for execution; it fails when the buffer is
// full (backpressure to the driver).
func (k *Kernel) Submit(p *cmdif.Packet) error {
	if len(k.buffer) >= k.depth {
		return fmt.Errorf("uck: command buffer full (%d)", k.depth)
	}
	k.buffer = append(k.buffer, p)
	return nil
}

// SubmitStream parses commands out of a contiguous byte buffer (the
// form they arrive in from the DMA control queue), using the header and
// payload length fields to find command boundaries, and buffers each
// one. It returns how many commands were accepted. A malformed packet
// stops parsing and is reported; commands already accepted stay
// buffered.
func (k *Kernel) SubmitStream(buf []byte) (n int, err error) {
	rest := buf
	for len(rest) > 0 {
		p, remaining, perr := cmdif.Unmarshal(rest)
		if perr != nil {
			return n, fmt.Errorf("uck: stream parse after %d commands: %w", n, perr)
		}
		if serr := k.Submit(p); serr != nil {
			return n, serr
		}
		n++
		rest = remaining
	}
	return n, nil
}

// Pending reports buffered command count.
func (k *Kernel) Pending() int { return len(k.buffer) }

// Executed reports total executed command count.
func (k *Kernel) Executed() int64 { return k.executed }

// ExecuteNext runs the oldest buffered command at time now and returns
// its response and completion time. ok is false when the buffer is
// empty.
func (k *Kernel) ExecuteNext(now sim.Time) (resp *cmdif.Packet, done sim.Time, ok bool, err error) {
	if len(k.buffer) == 0 {
		return nil, now, false, nil
	}
	p := k.buffer[0]
	k.buffer = k.buffer[1:]
	resp, done, err = k.Execute(now, p)
	return resp, done, true, err
}

// Execute runs one command immediately (bypassing the buffer) and
// returns the response packet and the completion time under the soft-
// core cost model. Execution is sequential: commands serialize on the
// kernel.
func (k *Kernel) Execute(now sim.Time, p *cmdif.Packet) (*cmdif.Packet, sim.Time, error) {
	start := k.clk.NextEdge(now)
	if k.busy > start {
		start = k.busy
	}
	words := 3 + len(p.Data)
	cycles := int64(parseCyclesPerWord*words + baseExecCycles)

	h, ok := k.handlers[p.Code]
	if !ok {
		k.busy = start + k.clk.CyclesTime(cycles)
		return nil, k.busy, fmt.Errorf("uck: no handler for %v", p.Code)
	}
	m, ok := k.Module(p.RBBID, p.InstanceID)
	if !ok {
		k.busy = start + k.clk.CyclesTime(cycles)
		return nil, k.busy, fmt.Errorf("uck: no module at %d/%d", p.RBBID, p.InstanceID)
	}
	k.execAt = start
	data, regOps, err := h(m, p)
	cycles += int64(cyclesPerRegOp * regOps)
	k.busy = start + k.clk.CyclesTime(cycles)
	if err != nil {
		return nil, k.busy, err
	}
	k.executed++
	return p.Response(data), k.busy, nil
}

func handleStatusRead(m *Module, _ *cmdif.Packet) ([]uint32, int, error) {
	return []uint32{m.RegRead(StatusAddr)}, 1, nil
}

func handleStatusWrite(m *Module, p *cmdif.Packet) ([]uint32, int, error) {
	if len(p.Data) < 1 {
		return nil, 0, fmt.Errorf("uck: status-write needs a value")
	}
	m.RegWrite(StatusAddr, p.Data[0])
	return nil, 1, nil
}

func handleModuleInit(m *Module, _ *cmdif.Packet) ([]uint32, int, error) {
	steps := m.runInit()
	return []uint32{m.Status()}, steps, nil
}

func handleModuleReset(m *Module, _ *cmdif.Packet) ([]uint32, int, error) {
	m.RegWrite(StatusAddr, StatusReset)
	m.resets++
	return []uint32{m.Status()}, 1, nil
}

func handleTableWrite(m *Module, p *cmdif.Packet) ([]uint32, int, error) {
	if len(p.Data) < 3 {
		return nil, 0, fmt.Errorf("uck: table-write needs table, index and entries")
	}
	tableID, index := p.Data[0], p.Data[1]
	entries := append([]uint32(nil), p.Data[2:]...)
	if sink, ok := m.tableSinks[tableID]; ok {
		if err := sink(index, entries); err != nil {
			return nil, 1, fmt.Errorf("uck: table %d sink: %w", tableID, err)
		}
		return nil, len(entries) + 1, nil
	}
	if m.tables[tableID] == nil {
		m.tables[tableID] = make(map[uint32][]uint32)
	}
	m.tables[tableID][index] = entries
	// One register write per entry word plus the index setup.
	return nil, len(entries) + 1, nil
}

func handleTableRead(m *Module, p *cmdif.Packet) ([]uint32, int, error) {
	if len(p.Data) < 2 {
		return nil, 0, fmt.Errorf("uck: table-read needs table and index")
	}
	if src, ok := m.tableSources[p.Data[0]]; ok {
		entries, ok := src(p.Data[1])
		if !ok {
			return nil, 1, fmt.Errorf("uck: table %d index %d not present", p.Data[0], p.Data[1])
		}
		return entries, len(entries) + 1, nil
	}
	entries, ok := m.Table(p.Data[0], p.Data[1])
	if !ok {
		return nil, 1, fmt.Errorf("uck: table %d index %d not present", p.Data[0], p.Data[1])
	}
	return entries, len(entries) + 1, nil
}

func handleStatsRead(m *Module, _ *cmdif.Packet) ([]uint32, int, error) {
	if m.statsFn == nil {
		return nil, 1, fmt.Errorf("uck: module %s has no stats", m.Name())
	}
	data := m.statsFn()
	return data, len(data), nil
}

func handleFlashErase(m *Module, p *cmdif.Packet) ([]uint32, int, error) {
	if m.flash == nil {
		return nil, 0, fmt.Errorf("uck: module %s has no flash", m.Name())
	}
	if len(p.Data) < 1 {
		return nil, 0, fmt.Errorf("uck: flash-erase needs a sector")
	}
	sector := p.Data[0]
	if sector >= m.flashSectors {
		return nil, 0, fmt.Errorf("uck: sector %d out of range [0,%d)", sector, m.flashSectors)
	}
	m.flash[sector] = true
	// Erasing is slow: model it as many register-op equivalents so the
	// kernel charges milliseconds-scale time.
	return []uint32{sector}, 4096, nil
}

// handleTimeCount returns the kernel's current time in nanoseconds as
// (high, low) words — the time-count operation of §3.3.3.
func (k *Kernel) handleTimeCount(_ *Module, _ *cmdif.Packet) ([]uint32, int, error) {
	ns := uint64(k.execAt / sim.Nanosecond)
	return []uint32{uint32(ns >> 32), uint32(ns)}, 1, nil
}
