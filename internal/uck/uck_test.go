package uck

import (
	"fmt"
	"strings"
	"testing"

	"harmonia/internal/cmdif"
	"harmonia/internal/sim"
)

// shellAInit mirrors Fig. 3d's shell A: wait for a status register,
// then a write sequence.
func shellAInit() []RegOp {
	return []RegOp{
		{Kind: OpWait, Addr: 0x10, Value: 1},
		{Kind: OpWrite, Addr: 0x14, Value: 0x7},
		{Kind: OpWrite, Addr: 0x18, Value: 0x1},
	}
}

// shellBInit mirrors shell B: automation logic allows direct writes.
func shellBInit() []RegOp {
	return []RegOp{
		{Kind: OpWrite, Addr: 0x20, Value: 0x1},
	}
}

func newKernel(t *testing.T) (*Kernel, *Module) {
	t.Helper()
	k, err := NewKernel(64)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModule("mac0", shellAInit())
	if err := k.Register(1, 0, m); err != nil {
		t.Fatal(err)
	}
	return k, m
}

func TestKernelValidation(t *testing.T) {
	if _, err := NewKernel(0); err == nil {
		t.Error("zero buffer depth should fail")
	}
	k, _ := newKernel(t)
	if err := k.Register(1, 0, NewModule("dup", nil)); err == nil {
		t.Error("duplicate registration should succeed? no — must fail")
	}
	if err := k.Register(2, 0, nil); err == nil {
		t.Error("nil module should fail")
	}
}

func TestModuleInitHidesPlatformSequence(t *testing.T) {
	// Host sends the same module-init command regardless of the
	// platform's register choreography.
	for name, seq := range map[string][]RegOp{"shell-a": shellAInit(), "shell-b": shellBInit()} {
		k, err := NewKernel(16)
		if err != nil {
			t.Fatal(err)
		}
		m := NewModule("mod", seq)
		k.Register(1, 0, m)
		cmd := cmdif.New(1, 0, cmdif.ModuleInit)
		resp, done, err := k.Execute(0, cmd)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if resp.Data[0] != StatusReady {
			t.Errorf("%s: status after init = %d", name, resp.Data[0])
		}
		if m.Inits() != 1 {
			t.Errorf("%s: inits = %d", name, m.Inits())
		}
		if done <= 0 {
			t.Errorf("%s: init took no time", name)
		}
	}
}

func TestStatusReadWrite(t *testing.T) {
	k, m := newKernel(t)
	resp, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.StatusRead))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Data[0] != StatusReset {
		t.Errorf("initial status = %d", resp.Data[0])
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.StatusWrite, StatusError)); err != nil {
		t.Fatal(err)
	}
	if m.Status() != StatusError {
		t.Errorf("status = %d after write", m.Status())
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.StatusWrite)); err == nil {
		t.Error("status-write without value should fail")
	}
}

func TestModuleReset(t *testing.T) {
	k, m := newKernel(t)
	k.Execute(0, cmdif.New(1, 0, cmdif.ModuleInit))
	resp, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.ModuleReset))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Data[0] != StatusReset || m.Resets() != 1 {
		t.Errorf("reset: status=%d resets=%d", resp.Data[0], m.Resets())
	}
}

func TestTableWriteRead(t *testing.T) {
	k, m := newKernel(t)
	_, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableWrite, 5, 9, 0xaa, 0xbb))
	if err != nil {
		t.Fatal(err)
	}
	entries, ok := m.Table(5, 9)
	if !ok || len(entries) != 2 || entries[0] != 0xaa {
		t.Errorf("table entries = %v, %v", entries, ok)
	}
	resp, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableRead, 5, 9))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 2 || resp.Data[1] != 0xbb {
		t.Errorf("table-read = %v", resp.Data)
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableRead, 5, 99)); err == nil {
		t.Error("reading a missing entry should fail")
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableWrite, 5)); err == nil {
		t.Error("short table-write should fail")
	}
}

func TestDynamicTableSourceSink(t *testing.T) {
	// A bound source/sink serves TableRead/TableWrite from live module
	// state — the path bulk state migration rides — shadowing stored
	// rows with the same table ID.
	k, m := newKernel(t)
	const tid = 0x4C420001
	// Pre-store a row under the same ID: the source must shadow it.
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableWrite, tid, 0, 0xdead)); err != nil {
		t.Fatal(err)
	}
	live := map[uint32][]uint32{0: {0x11, 0x22}, 1: {0x33}}
	var sunk [][]uint32
	m.SetTableSource(tid, func(index uint32) ([]uint32, bool) {
		e, ok := live[index]
		return e, ok
	})
	m.SetTableSink(tid, func(index uint32, entry []uint32) error {
		if index == 99 {
			return fmt.Errorf("bad row")
		}
		sunk = append(sunk, entry)
		return nil
	})

	resp, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableRead, tid, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 2 || resp.Data[0] != 0x11 {
		t.Errorf("sourced read = %v, want live state not stored row", resp.Data)
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableRead, tid, 7)); err == nil {
		t.Error("missing sourced index should fail")
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableWrite, tid, 0, 0x55, 0x66)); err != nil {
		t.Fatal(err)
	}
	if len(sunk) != 1 || len(sunk[0]) != 2 || sunk[0][1] != 0x66 {
		t.Errorf("sink saw %v", sunk)
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableWrite, tid, 99, 0x1)); err == nil {
		t.Error("sink error should propagate")
	}
	// Other table IDs still use stored rows.
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.TableWrite, 5, 1, 0x77)); err != nil {
		t.Fatal(err)
	}
	if e, ok := m.Table(5, 1); !ok || e[0] != 0x77 {
		t.Error("stored tables broken by dynamic binding")
	}
	// Unbinding restores the stored row.
	m.SetTableSource(tid, nil)
	m.SetTableSink(tid, nil)
	resp, _, err = k.Execute(0, cmdif.New(1, 0, cmdif.TableRead, tid, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 1 || resp.Data[0] != 0xdead {
		t.Errorf("after unbind read = %v, want stored row", resp.Data)
	}
}

func TestStatsRead(t *testing.T) {
	k, m := newKernel(t)
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.StatsRead)); err == nil {
		t.Error("stats without a stats function should fail")
	}
	m.SetStatsFn(func() []uint32 { return []uint32{100, 200} })
	resp, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.StatsRead))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 2 || resp.Data[1] != 200 {
		t.Errorf("stats = %v", resp.Data)
	}
}

func TestUnknownTargetsAndCodes(t *testing.T) {
	k, _ := newKernel(t)
	if _, _, err := k.Execute(0, cmdif.New(9, 9, cmdif.StatusRead)); err == nil ||
		!strings.Contains(err.Error(), "no module") {
		t.Errorf("unknown module error = %v", err)
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.Code(0x7777))); err == nil ||
		!strings.Contains(err.Error(), "no handler") {
		t.Errorf("unknown code error = %v", err)
	}
}

func TestExtend(t *testing.T) {
	k, _ := newKernel(t)
	const i2cRead cmdif.Code = 0x0100
	err := k.Extend(i2cRead, func(m *Module, p *cmdif.Packet) ([]uint32, int, error) {
		return []uint32{0x55}, 2, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, _, err := k.Execute(0, cmdif.New(1, 0, i2cRead))
	if err != nil || resp.Data[0] != 0x55 {
		t.Errorf("extended handler: %v, %v", resp, err)
	}
	if err := k.Extend(i2cRead, nil); err == nil {
		t.Error("duplicate extend should fail")
	}
	if err := k.Extend(cmdif.Code(0x200), nil); err == nil {
		t.Error("nil handler should fail")
	}
}

func TestBufferedExecution(t *testing.T) {
	k, err := NewKernel(2)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(1, 0, NewModule("m", nil))
	if err := k.Submit(cmdif.New(1, 0, cmdif.StatusRead)); err != nil {
		t.Fatal(err)
	}
	if err := k.Submit(cmdif.New(1, 0, cmdif.ModuleInit)); err != nil {
		t.Fatal(err)
	}
	if err := k.Submit(cmdif.New(1, 0, cmdif.StatusRead)); err == nil {
		t.Error("buffer overflow not detected")
	}
	if k.Pending() != 2 {
		t.Errorf("Pending = %d", k.Pending())
	}
	resp, _, ok, err := k.ExecuteNext(0)
	if !ok || err != nil || resp.Code != cmdif.StatusRead {
		t.Errorf("first = %+v, %v, %v", resp, ok, err)
	}
	resp, _, ok, err = k.ExecuteNext(0)
	if !ok || err != nil || resp.Code != cmdif.ModuleInit {
		t.Errorf("second = %+v, %v, %v", resp, ok, err)
	}
	if _, _, ok, _ := k.ExecuteNext(0); ok {
		t.Error("empty buffer executed")
	}
	if k.Executed() != 2 {
		t.Errorf("Executed = %d", k.Executed())
	}
}

func TestExecutionSerializesAndCosts(t *testing.T) {
	k, _ := newKernel(t)
	_, d1, err := k.Execute(0, cmdif.New(1, 0, cmdif.StatusRead))
	if err != nil {
		t.Fatal(err)
	}
	_, d2, err := k.Execute(0, cmdif.New(1, 0, cmdif.StatusRead))
	if err != nil {
		t.Fatal(err)
	}
	if d2 <= d1 {
		t.Error("commands did not serialize on the soft core")
	}
	// Microsecond-scale at most for simple commands.
	if d1 > 10*sim.Microsecond {
		t.Errorf("status-read took %v", d1)
	}
	// A big table write costs more than a status read.
	_, d3, err := k.Execute(sim.Millisecond, cmdif.New(1, 0, cmdif.TableWrite,
		append([]uint32{1, 1}, make([]uint32, 64)...)...))
	if err != nil {
		t.Fatal(err)
	}
	if d3-sim.Millisecond <= d1 {
		t.Error("table write should cost more than status read")
	}
}

func TestFlashErase(t *testing.T) {
	k, m := newKernel(t)
	// Without flash, the command fails.
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.FlashErase, 0)); err == nil {
		t.Error("flash-erase without flash should fail")
	}
	m.EnableFlash(16)
	resp, done, err := k.Execute(0, cmdif.New(1, 0, cmdif.FlashErase, 3))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Data[0] != 3 || !m.FlashErased(3) {
		t.Errorf("sector 3 not erased: %v", resp.Data)
	}
	if m.FlashErased(4) {
		t.Error("sector 4 erased unexpectedly")
	}
	// Erase is slow relative to a status read.
	_, fast, _ := k.Execute(done, cmdif.New(1, 0, cmdif.StatusRead))
	if done < (fast-done)*100 {
		t.Errorf("flash erase (%v) should dwarf a status read (%v)", done, fast-done)
	}
	// Out-of-range sector and missing operand fail.
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.FlashErase, 99)); err == nil {
		t.Error("out-of-range sector should succeed? no — must fail")
	}
	if _, _, err := k.Execute(0, cmdif.New(1, 0, cmdif.FlashErase)); err == nil {
		t.Error("missing sector should fail")
	}
}

func TestTimeCount(t *testing.T) {
	k, _ := newKernel(t)
	at := 3 * sim.Millisecond
	resp, _, err := k.Execute(at, cmdif.New(1, 0, cmdif.TimeCount))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 2 {
		t.Fatalf("time-count data = %v", resp.Data)
	}
	ns := uint64(resp.Data[0])<<32 | uint64(resp.Data[1])
	if ns < 3_000_000 || ns > 3_100_000 {
		t.Errorf("time-count = %d ns, want about 3ms", ns)
	}
}

func TestSubmitStream(t *testing.T) {
	k, m := newKernel(t)
	b1, _ := cmdif.New(1, 0, cmdif.ModuleInit).Marshal()
	b2, _ := cmdif.New(1, 0, cmdif.TableWrite, 2, 7, 0x11).Marshal()
	b3, _ := cmdif.New(1, 0, cmdif.StatusRead).Marshal()
	stream := append(append(append([]byte{}, b1...), b2...), b3...)
	n, err := k.SubmitStream(stream)
	if err != nil || n != 3 {
		t.Fatalf("SubmitStream = %d, %v", n, err)
	}
	// Execute the buffered stream in order.
	var now sim.Time
	for {
		_, done, ok, err := k.ExecuteNext(now)
		if !ok {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	if m.Status() != StatusReady {
		t.Error("init from stream not executed")
	}
	if e, ok := m.Table(2, 7); !ok || e[0] != 0x11 {
		t.Error("table write from stream not executed")
	}
}

func TestSubmitStreamStopsOnCorruption(t *testing.T) {
	k, _ := newKernel(t)
	good, _ := cmdif.New(1, 0, cmdif.StatusRead).Marshal()
	bad := append([]byte{}, good...)
	bad[5] ^= 0xFF
	stream := append(append([]byte{}, good...), bad...)
	n, err := k.SubmitStream(stream)
	if err == nil {
		t.Fatal("corrupted stream accepted")
	}
	if n != 1 || k.Pending() != 1 {
		t.Errorf("accepted %d, pending %d; want the good prefix only", n, k.Pending())
	}
}

func TestSubmitStreamRespectsBufferDepth(t *testing.T) {
	k, err := NewKernel(1)
	if err != nil {
		t.Fatal(err)
	}
	k.Register(1, 0, NewModule("m", nil))
	b, _ := cmdif.New(1, 0, cmdif.StatusRead).Marshal()
	stream := append(append([]byte{}, b...), b...)
	n, err := k.SubmitStream(stream)
	if err == nil || n != 1 {
		t.Errorf("buffer overflow not reported: n=%d err=%v", n, err)
	}
}
