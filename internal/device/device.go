// Package device boots and runs the simulated FPGA instance: the
// tailored shell's modules registered with a unified control kernel,
// reachable from host software through the command-based interface
// over a simulated PCIe link. It also carries the board-health model
// (sensors, thermal watchdog) and the irq event path that
// latency-critical notifications take (§3.2).
//
// The root harmonia package re-exports these types; internal layers
// that sit above a running instance (the fleet control plane) import
// this package directly.
package device

import (
	"fmt"
	"sort"
	"strings"

	"harmonia/internal/cmdif"
	"harmonia/internal/hostsw"
	"harmonia/internal/obs"
	"harmonia/internal/pcie"
	"harmonia/internal/sim"
	"harmonia/internal/toolchain"
	"harmonia/internal/uck"
)

// RBB IDs used in command addressing.
const (
	RBBUCK     uint8 = 0
	RBBNetwork uint8 = 1
	RBBMemory  uint8 = 2
	RBBHost    uint8 = 3
	RBBMgmt    uint8 = 4
	RBBRole    uint8 = 5
)

// ModuleInfo describes one controllable module on a running device.
type ModuleInfo struct {
	RBBID      uint8
	InstanceID uint8
	Name       string
}

// Event is a latency-critical hardware notification delivered over the
// irq path (§3.2): thermal alarms, link state changes, parity errors.
// Events bypass the command interface entirely.
type Event struct {
	RBBID      uint8
	InstanceID uint8
	Module     string
	Code       uint32
	Data       uint32
	At         sim.Time
}

// Well-known event codes.
const (
	EventThermalAlarm uint32 = 0x01
	EventLinkDown     uint32 = 0x02
	EventParityError  uint32 = 0x03
)

// Device is a running simulated FPGA instance: the tailored shell's
// modules registered with a unified control kernel, reachable from host
// software through the command-based interface over a simulated PCIe
// link.
type Device struct {
	project *toolchain.Project
	kernel  *uck.Kernel
	driver  *hostsw.CmdDriver
	modules []ModuleInfo
	now     sim.Time
	// events is the host-visible interrupt ring; handler, if set, is
	// invoked on delivery.
	events  []Event
	handler func(Event)
	// irqLatency is the MSI-X delivery cost over PCIe.
	irqLatency sim.Time
	// thermalLimit arms the thermal watchdog (0 = disarmed).
	thermalLimit uint32
	// thermalOffset raises the sensed die temperature (milli-degC);
	// fault injection uses it to simulate cooling failures.
	thermalOffset uint32
}

// rbbIDFor maps shell component names to RBB IDs.
func rbbIDFor(component string) uint8 {
	switch {
	case component == "uck":
		return RBBUCK
	case component == "management":
		return RBBMgmt
	case strings.HasPrefix(component, "network"):
		return RBBNetwork
	case strings.HasPrefix(component, "memory"):
		return RBBMemory
	case strings.HasPrefix(component, "host"):
		return RBBHost
	default:
		return RBBRole
	}
}

// Boot assembles a running instance from a compiled project.
func Boot(proj *toolchain.Project) (*Device, error) {
	pcieGen, pcieLanes := 4, 16
	if p, ok := proj.Device.PCIe(); ok {
		pcieGen, pcieLanes = p.PCIeGen, p.PCIeLanes
	}
	link, err := pcie.NewLink(proj.Device.Name+"-pcie", pcieGen, pcieLanes)
	if err != nil {
		return nil, err
	}
	engine, err := pcie.NewEngine(link, pcie.DefaultEngineConfig())
	if err != nil {
		return nil, err
	}
	kernel, err := uck.NewKernel(64)
	if err != nil {
		return nil, err
	}
	driver, err := hostsw.NewCmdDriver(engine, kernel)
	if err != nil {
		return nil, err
	}
	d := &Device{project: proj, kernel: kernel, driver: driver, irqLatency: link.Latency()}

	// Register one control module per shell component plus the role,
	// each with its platform-specific init choreography.
	instances := map[uint8]uint8{}
	register := func(component string, category string) error {
		rbbID := rbbIDFor(component)
		inst := instances[rbbID]
		instances[rbbID]++
		var initSeq []uck.RegOp
		if category != "" {
			initSeq, err = hostsw.ModuleInitRegisters(proj.Device, category)
			if err != nil {
				return err
			}
		}
		m := uck.NewModule(component, initSeq)
		if err := kernel.Register(rbbID, inst, m); err != nil {
			return err
		}
		// Wire the module's irq output into the host event ring.
		info := ModuleInfo{RBBID: rbbID, InstanceID: inst, Name: component}
		m.SetEventSink(func(code, data uint32) {
			d.deliverEvent(info, code, data)
		})
		d.modules = append(d.modules, info)
		return nil
	}
	names := proj.Shell.ComponentNames()
	sort.Strings(names)
	for _, name := range names {
		c, _ := proj.Shell.Component(name)
		category := ""
		switch {
		case name == "uck":
			category = "uck"
		case name == "management":
			category = "mgmt"
		case c.RBB != nil:
			category = categoryFor(name)
		}
		if err := register(name, category); err != nil {
			return nil, err
		}
	}
	if err := register(proj.Role.Name, ""); err != nil {
		return nil, err
	}
	// The management module carries the configuration flash (dual-image
	// bitstream storage) and the board health sensors.
	if mgmt, ok := kernel.Module(RBBMgmt, 0); ok {
		mgmt.EnableFlash(64)
		mgmt.SetStatsFn(d.readSensors)
	}
	return d, nil
}

// readSensors models the board telemetry the management block samples:
// die temperature (milli-degC), core voltage (mV) and power (mW),
// deterministic functions of activity so repeated reads are stable and
// testable.
func (d *Device) readSensors() []uint32 {
	// Temperature rises slightly with uptime activity, bounded well
	// below throttling levels; fault injection can add an offset.
	baseTemp := uint32(45_000) // 45 C
	activity := uint32(d.kernel.Executed() % 64)
	return []uint32{
		baseTemp + activity*100 + d.thermalOffset, // temperature, milli-degC
		850,    // VCCINT, mV
		62_000, // board power, mW
	}
}

// SetThermalThreshold arms the thermal watchdog: CheckHealth raises an
// EventThermalAlarm over the irq path when the die temperature meets or
// exceeds the threshold (milli-degC). Zero disarms it.
func (d *Device) SetThermalThreshold(milliC uint32) { d.thermalLimit = milliC }

// SetThermalOffset injects additional die temperature (milli-degC) into
// every subsequent sensor reading — a cooling failure or hot-spot fault
// for watchdog and failover testing. Zero restores nominal readings.
func (d *Device) SetThermalOffset(milliC uint32) { d.thermalOffset = milliC }

// SetWireFaultInjector installs a corruption hook on the command wire
// (every marshalled command passes through fn before the kernel parses
// it). Faults that corrupt all attempts make the device unreachable
// over the command path — the silent-death failure mode the fleet
// health monitor detects by missed heartbeats. Nil removes the hook.
func (d *Device) SetWireFaultInjector(fn func(attempt int, buf []byte) []byte) {
	d.driver.SetFaultInjector(fn)
}

// SetCmdTrace attaches (nil detaches) a trace track to the command
// driver; retried and dropped commands record spans on it.
func (d *Device) SetCmdTrace(b *obs.Buffer) { d.driver.SetTrace(b) }

// CmdStats reports the command-path delivery counters: commands
// completed, checksum-triggered retransmissions, and commands dropped
// after exhausting retries. The fleet health monitor surfaces these per
// node — retransmissions are the early signal of a corrupting wire
// before heartbeats are lost outright.
func (d *Device) CmdStats() (issued, retries, drops int64) {
	return d.driver.Issued(), d.driver.Retries(), d.driver.Drops()
}

// CheckHealth samples the board sensors (the management block's
// periodic health monitoring) and raises irq events for violations. It
// returns the sampled temperature.
func (d *Device) CheckHealth() (tempMilliC uint32, err error) {
	temp, _, _, err := d.Sensors()
	if err != nil {
		return 0, err
	}
	if d.thermalLimit > 0 && temp >= d.thermalLimit {
		if err := d.RaiseEvent(RBBMgmt, 0, EventThermalAlarm, temp); err != nil {
			return temp, err
		}
	}
	return temp, nil
}

// Sensors reads the board telemetry through the command interface:
// temperature (milli-degC), core voltage (mV), power (mW).
func (d *Device) Sensors() (temp, vccint, power uint32, err error) {
	data, err := d.Stats(RBBMgmt, 0)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(data) != 3 {
		return 0, 0, 0, fmt.Errorf("harmonia: malformed sensor response")
	}
	return data[0], data[1], data[2], nil
}

// deliverEvent records an irq-path notification, charging the MSI-X
// delivery latency, and invokes the registered handler.
func (d *Device) deliverEvent(info ModuleInfo, code, data uint32) {
	ev := Event{
		RBBID: info.RBBID, InstanceID: info.InstanceID, Module: info.Name,
		Code: code, Data: data, At: d.now + d.irqLatency,
	}
	d.events = append(d.events, ev)
	if d.handler != nil {
		d.handler(ev)
	}
}

// OnInterrupt registers a handler invoked synchronously on every
// irq-path event.
func (d *Device) OnInterrupt(fn func(Event)) { d.handler = fn }

// Events drains the pending event ring.
func (d *Device) Events() []Event {
	out := d.events
	d.events = nil
	return out
}

// RaiseEvent injects a hardware event on a module — models and tests
// use it to simulate alarms.
func (d *Device) RaiseEvent(rbbID, instanceID uint8, code, data uint32) error {
	m, ok := d.kernel.Module(rbbID, instanceID)
	if !ok {
		return fmt.Errorf("harmonia: no module at %d/%d", rbbID, instanceID)
	}
	m.RaiseEvent(code, data)
	return nil
}

// EraseFlash erases one sector of the management module's configuration
// flash.
func (d *Device) EraseFlash(sector uint32) error {
	_, err := d.Do(cmdif.New(RBBMgmt, 0, cmdif.FlashErase, sector))
	return err
}

// Time reads the device's time counter in nanoseconds.
func (d *Device) Time() (uint64, error) {
	resp, err := d.Do(cmdif.New(RBBUCK, 0, cmdif.TimeCount))
	if err != nil {
		return 0, err
	}
	if len(resp.Data) != 2 {
		return 0, fmt.Errorf("harmonia: malformed time-count response")
	}
	return uint64(resp.Data[0])<<32 | uint64(resp.Data[1]), nil
}

// categoryFor maps component names to hostsw module categories.
func categoryFor(component string) string {
	switch {
	case strings.HasPrefix(component, "network"):
		return "mac"
	case strings.HasPrefix(component, "memory-HBM"):
		return "hbm"
	case strings.HasPrefix(component, "memory"):
		return "ddr4"
	case strings.HasPrefix(component, "host"):
		return "pcie-dma"
	default:
		return "mgmt"
	}
}

// Modules lists the controllable modules.
func (d *Device) Modules() []ModuleInfo {
	return append([]ModuleInfo(nil), d.modules...)
}

// Uptime reports elapsed simulated time on the instance.
func (d *Device) Uptime() sim.Time { return d.now }

// Do issues a raw command packet and returns the response.
func (d *Device) Do(p *cmdif.Packet) (*cmdif.Packet, error) {
	resp, done, err := d.driver.Do(d.now, p)
	if done > d.now {
		d.now = done
	}
	if err != nil {
		return nil, err
	}
	return resp, nil
}

// Init initializes a module: one command replaces the platform's whole
// register choreography.
func (d *Device) Init(rbbID, instanceID uint8) error {
	resp, err := d.Do(cmdif.New(rbbID, instanceID, cmdif.ModuleInit))
	if err != nil {
		return err
	}
	if len(resp.Data) != 1 || resp.Data[0] != uck.StatusReady {
		return fmt.Errorf("harmonia: module %d/%d not ready after init", rbbID, instanceID)
	}
	return nil
}

// InitAll initializes every module on the device.
func (d *Device) InitAll() error {
	for _, m := range d.modules {
		if err := d.Init(m.RBBID, m.InstanceID); err != nil {
			return fmt.Errorf("harmonia: init %s: %w", m.Name, err)
		}
	}
	return nil
}

// Status reads a module's status register.
func (d *Device) Status(rbbID, instanceID uint8) (uint32, error) {
	resp, err := d.Do(cmdif.New(rbbID, instanceID, cmdif.StatusRead))
	if err != nil {
		return 0, err
	}
	if len(resp.Data) != 1 {
		return 0, fmt.Errorf("harmonia: malformed status response")
	}
	return resp.Data[0], nil
}

// Ready reports whether a module's status is ready.
func (d *Device) Ready(rbbID, instanceID uint8) (bool, error) {
	s, err := d.Status(rbbID, instanceID)
	if err != nil {
		return false, err
	}
	return s == uck.StatusReady, nil
}

// Reset resets a module.
func (d *Device) Reset(rbbID, instanceID uint8) error {
	_, err := d.Do(cmdif.New(rbbID, instanceID, cmdif.ModuleReset))
	return err
}

// WriteTable programs a table entry on a module.
func (d *Device) WriteTable(rbbID, instanceID uint8, table, index uint32, entry ...uint32) error {
	data := append([]uint32{table, index}, entry...)
	_, err := d.Do(cmdif.New(rbbID, instanceID, cmdif.TableWrite, data...))
	return err
}

// ReadTable reads a table entry back.
func (d *Device) ReadTable(rbbID, instanceID uint8, table, index uint32) ([]uint32, error) {
	resp, err := d.Do(cmdif.New(rbbID, instanceID, cmdif.TableRead, table, index))
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Stats reads a module's monitoring statistics. Modules expose stats
// via SetStatsSource.
func (d *Device) Stats(rbbID, instanceID uint8) ([]uint32, error) {
	resp, err := d.Do(cmdif.New(rbbID, instanceID, cmdif.StatsRead))
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// SetStatsSource installs the monitoring callback for a module —
// applications wire their RBB counters here.
func (d *Device) SetStatsSource(rbbID, instanceID uint8, fn func() []uint32) error {
	m, ok := d.kernel.Module(rbbID, instanceID)
	if !ok {
		return fmt.Errorf("harmonia: no module at %d/%d", rbbID, instanceID)
	}
	m.SetStatsFn(fn)
	return nil
}

// Kernel exposes the control kernel for extension (new command codes,
// §3.3.3's extensibility hook).
func (d *Device) Kernel() *uck.Kernel { return d.kernel }
