package net

import (
	"testing"
	"testing/quick"

	"harmonia/internal/sim"
)

func TestHWAddr(t *testing.T) {
	a := HWAddr{0x00, 0x1b, 0x21, 0xaa, 0xbb, 0xcc}
	if a.String() != "00:1b:21:aa:bb:cc" {
		t.Errorf("String() = %q", a.String())
	}
	if a.IsMulticast() {
		t.Error("unicast address reported multicast")
	}
	m := HWAddr{0x01, 0, 0x5e, 0, 0, 1}
	if !m.IsMulticast() {
		t.Error("multicast address not detected")
	}
}

func TestIPAddr(t *testing.T) {
	if IPv4(10, 0, 0, 1).String() != "10.0.0.1" {
		t.Errorf("String() = %q", IPv4(10, 0, 0, 1).String())
	}
}

func TestFlowKeyReverse(t *testing.T) {
	p := &Packet{
		SrcIP: IPv4(10, 0, 0, 1), DstIP: IPv4(10, 0, 0, 2),
		Proto: ProtoTCP, SrcPort: 1234, DstPort: 80,
	}
	k := p.Flow()
	r := k.Reverse()
	if r.SrcIP != k.DstIP || r.DstIP != k.SrcIP || r.SrcPort != k.DstPort || r.DstPort != k.SrcPort {
		t.Errorf("Reverse() = %+v", r)
	}
	if r.Reverse() != k {
		t.Error("double Reverse() not identity")
	}
}

func TestFlowHashDeterministicAndSpread(t *testing.T) {
	k1 := FlowKey{SrcIP: IPv4(10, 0, 0, 1), DstIP: IPv4(10, 0, 0, 2), Proto: 6, SrcPort: 1, DstPort: 2}
	if k1.Hash() != k1.Hash() {
		t.Error("Hash not deterministic")
	}
	// Different keys should spread: check a sample of ports maps to
	// more than half the buckets of a 16-way table.
	buckets := map[uint64]bool{}
	for port := uint16(0); port < 256; port++ {
		k := k1
		k.SrcPort = port
		buckets[k.Hash()%16] = true
	}
	if len(buckets) < 12 {
		t.Errorf("hash spread over %d/16 buckets", len(buckets))
	}
}

func TestChecksum(t *testing.T) {
	// RFC 1071 example: checksum of 00 01 f2 03 f4 f5 f6 f7 = 0x220d.
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Checksum(data); got != 0x220d {
		t.Errorf("Checksum = %#04x, want 0x220d", got)
	}
	// Odd length is handled.
	_ = Checksum([]byte{0x01, 0x02, 0x03})
	// Checksum over data plus its checksum verifies to zero.
	withSum := append(append([]byte{}, data...), 0x22, 0x0d)
	if got := Checksum(withSum); got != 0 {
		t.Errorf("verify Checksum = %#04x, want 0", got)
	}
}

func TestChecksumIncrementalProperty(t *testing.T) {
	// Appending two zero bytes never changes the checksum.
	f := func(data []byte) bool {
		return Checksum(data) == Checksum(append(append([]byte{}, data...), 0, 0)) || len(data)%2 == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLinkSerialization(t *testing.T) {
	l := NewLink("eth0", 100, 0) // 100 Gbps, no prop delay
	// A 1000B frame + 20B overhead at 100Gbps = 81.6ns.
	arrive := l.Transmit(0, 1000)
	want := sim.Time(float64(1020*8) / 100 * float64(sim.Nanosecond))
	if arrive != want {
		t.Errorf("arrival = %v, want %v", arrive, want)
	}
	// Back-to-back frames serialize.
	second := l.Transmit(0, 1000)
	if second != 2*want {
		t.Errorf("second arrival = %v, want %v", second, 2*want)
	}
	if l.Frames() != 2 || l.Bytes() != 2000 {
		t.Errorf("Frames=%d Bytes=%d", l.Frames(), l.Bytes())
	}
}

func TestLinkPropagationDelay(t *testing.T) {
	l := NewLink("wan", 100, 500*sim.Nanosecond)
	arrive := l.Transmit(0, 64)
	if arrive <= 500*sim.Nanosecond {
		t.Errorf("arrival %v should include propagation delay", arrive)
	}
	if l.Busy() >= arrive {
		t.Error("wire busy time should exclude propagation delay")
	}
}

func TestLinkThroughputMatchesLineRate(t *testing.T) {
	l := NewLink("eth", 100, 0)
	const frames = 10_000
	const size = 1024
	var last sim.Time
	for i := 0; i < frames; i++ {
		last = l.Transmit(0, size)
	}
	gbps := float64(frames*size*8) / last.Nanoseconds()
	want := EffectiveGbps(100, size)
	if gbps < want*0.99 || gbps > want*1.01 {
		t.Errorf("sustained %0.2f Gbps, want about %0.2f", gbps, want)
	}
}

func TestEffectiveGbpsSmallFramesPenalized(t *testing.T) {
	small := EffectiveGbps(100, 64)
	large := EffectiveGbps(100, 1500)
	if small >= large {
		t.Error("small frames should see lower goodput")
	}
	if small > 80 {
		t.Errorf("64B goodput = %v, want about 76 Gbps", small)
	}
}

func TestNewLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewLink(0 Gbps) did not panic")
		}
	}()
	NewLink("bad", 0, 0)
}

func TestFlowHashLowBitsUnbiased(t *testing.T) {
	// Regression: flows whose low byte appears in both srcIP and
	// srcPort cancel in raw FNV's linear low bit; the finalizer must
	// spread them across all mod-4 buckets (backend selection).
	buckets := map[uint64]int{}
	for flow := 0; flow < 256; flow++ {
		k := FlowKey{
			SrcIP:   IPv4(172, 16, byte(flow>>8), byte(flow)),
			DstIP:   IPv4(20, 0, 0, 1),
			Proto:   ProtoTCP,
			SrcPort: uint16(1024 + flow),
			DstPort: 443,
		}
		buckets[k.Hash()%4]++
	}
	if len(buckets) != 4 {
		t.Fatalf("mod-4 buckets used: %d, want 4 (%v)", len(buckets), buckets)
	}
	for b, c := range buckets {
		if c < 32 || c > 96 {
			t.Errorf("bucket %d has %d of 256, want roughly even", b, c)
		}
	}
}
