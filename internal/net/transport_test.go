package net

import (
	"testing"
	"testing/quick"

	"harmonia/internal/sim"
)

func mkSegs(n, size int) []Segment {
	segs := make([]Segment, n)
	for i := range segs {
		segs[i] = Segment{Seq: uint32(i), Bytes: size}
	}
	return segs
}

func TestLossyLinkDropsDeterministically(t *testing.T) {
	l := NewLossyLink("l", 100, 0, 3)
	drops := 0
	for i := 0; i < 9; i++ {
		if _, ok := l.Send(0, 64); !ok {
			drops++
		}
	}
	if drops != 3 || l.Dropped() != 3 {
		t.Errorf("drops = %d / %d, want 3", drops, l.Dropped())
	}
	// Zero disables loss.
	clean := NewLossyLink("c", 100, 0, 0)
	for i := 0; i < 10; i++ {
		if _, ok := clean.Send(0, 64); !ok {
			t.Fatal("lossless link dropped a frame")
		}
	}
}

func TestReliableLosslessDelivery(t *testing.T) {
	link := NewLossyLink("l", 100, sim.Microsecond, 0)
	r, err := NewReliable(link, 8, 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	segs := mkSegs(100, 1024)
	done, err := r.Transfer(0, segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInOrder(segs, r.Delivered()); err != nil {
		t.Error(err)
	}
	if r.Retransmissions() != 0 {
		t.Errorf("lossless transfer retransmitted %d", r.Retransmissions())
	}
	if done <= 0 {
		t.Error("transfer took no time")
	}
}

func TestReliableRecoversFromLoss(t *testing.T) {
	// Drop every 7th frame: the transport must still deliver everything
	// exactly once, in order, at a time cost.
	lossy := NewLossyLink("l", 100, sim.Microsecond, 7)
	r, err := NewReliable(lossy, 4, 50*sim.Microsecond)
	if err != nil {
		t.Fatal(err)
	}
	segs := mkSegs(60, 512)
	doneLossy, err := r.Transfer(0, segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyInOrder(segs, r.Delivered()); err != nil {
		t.Fatal(err)
	}
	if len(r.Delivered()) != len(segs) {
		t.Errorf("delivered %d, want %d exactly once", len(r.Delivered()), len(segs))
	}
	if r.Retransmissions() == 0 {
		t.Error("loss did not trigger retransmission")
	}
	// Compare against a clean run: loss must cost time.
	clean := NewLossyLink("c", 100, sim.Microsecond, 0)
	r2, _ := NewReliable(clean, 4, 50*sim.Microsecond)
	doneClean, _ := r2.Transfer(0, segs)
	if doneLossy <= doneClean {
		t.Errorf("lossy %v not slower than clean %v", doneLossy, doneClean)
	}
}

func TestReliableDeadLinkFails(t *testing.T) {
	dead := NewLossyLink("dead", 100, 0, 1) // drops everything
	r, _ := NewReliable(dead, 4, sim.Microsecond)
	if _, err := r.Transfer(0, mkSegs(4, 64)); err == nil {
		t.Error("transfer over a dead link should fail")
	}
}

func TestReliableValidation(t *testing.T) {
	if _, err := NewReliable(nil, 4, sim.Microsecond); err == nil {
		t.Error("nil link accepted")
	}
	l := NewLossyLink("l", 100, 0, 0)
	if _, err := NewReliable(l, 0, sim.Microsecond); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewReliable(l, 4, 0); err == nil {
		t.Error("zero RTO accepted")
	}
	r, _ := NewReliable(l, 4, sim.Microsecond)
	if done, err := r.Transfer(42, nil); err != nil || done != 42 {
		t.Error("empty transfer should be free")
	}
}

// Property: for any drop period >= 2 and segment count, delivery is
// exactly-once and in order.
func TestReliableExactlyOnceProperty(t *testing.T) {
	f := func(dropRaw, nRaw uint8) bool {
		drop := int(dropRaw%9) + 2 // 2..10
		n := int(nRaw%40) + 1      // 1..40
		link := NewLossyLink("p", 100, sim.Microsecond, drop)
		r, err := NewReliable(link, 4, 20*sim.Microsecond)
		if err != nil {
			return false
		}
		segs := mkSegs(n, 256)
		if _, err := r.Transfer(0, segs); err != nil {
			return false
		}
		if len(r.Delivered()) != n {
			return false
		}
		return VerifyInOrder(segs, r.Delivered()) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
