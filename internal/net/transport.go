package net

import (
	"fmt"

	"harmonia/internal/sim"
)

// LossyLink wraps a Link with deterministic loss injection, for
// exercising the reliable transport under failure.
type LossyLink struct {
	*Link
	// DropEvery drops every Nth frame (0 disables loss).
	DropEvery int
	sent      int64
	dropped   int64
}

// NewLossyLink returns a link that drops every dropEvery-th frame.
func NewLossyLink(name string, gbps float64, propDelay sim.Time, dropEvery int) *LossyLink {
	return &LossyLink{Link: NewLink(name, gbps, propDelay), DropEvery: dropEvery}
}

// Send transmits a frame; ok is false when the frame was lost (the
// wire time is still consumed — the bits went out, nobody caught them).
func (l *LossyLink) Send(now sim.Time, wireBytes int) (arrive sim.Time, ok bool) {
	arrive = l.Transmit(now, wireBytes)
	l.sent++
	if l.DropEvery > 0 && l.sent%int64(l.DropEvery) == 0 {
		l.dropped++
		return arrive, false
	}
	return arrive, true
}

// Dropped reports lost frames.
func (l *LossyLink) Dropped() int64 { return l.dropped }

// Segment is one transport-layer unit.
type Segment struct {
	Seq     uint32
	Bytes   int
	Payload []byte
}

// Reliable is a go-back-N sender/receiver pair over a lossy link — the
// flow-level processing (TCP/RDMA-style transport) the Network RBB's
// instances provide. The model is functional: data arrives exactly
// once, in order, with timing that reflects retransmissions.
type Reliable struct {
	link   *LossyLink
	window int
	// rto is the retransmission timeout.
	rto sim.Time

	nextSeq   uint32 // next sequence to send
	ackedSeq  uint32 // cumulative ack (all < ackedSeq delivered)
	delivered []Segment
	retrans   int64
}

// NewReliable returns a transport over link with the given window.
func NewReliable(link *LossyLink, window int, rto sim.Time) (*Reliable, error) {
	if link == nil || window <= 0 || rto <= 0 {
		return nil, fmt.Errorf("net: invalid reliable transport config")
	}
	return &Reliable{link: link, window: window, rto: rto}, nil
}

// Retransmissions reports how many segments were resent.
func (r *Reliable) Retransmissions() int64 { return r.retrans }

// Delivered returns the in-order delivered segments.
func (r *Reliable) Delivered() []Segment { return r.delivered }

// Transfer sends segments reliably starting at now and returns the time
// the last segment is acknowledged. Loss triggers go-back-N
// retransmission after the RTO.
func (r *Reliable) Transfer(now sim.Time, segs []Segment) (sim.Time, error) {
	if len(segs) == 0 {
		return now, nil
	}
	t := now
	base := 0 // index of first unacked segment
	attempts := 0
	const maxAttempts = 64 // give up on a dead link
	for base < len(segs) {
		attempts++
		if attempts > maxAttempts+len(segs) {
			return t, fmt.Errorf("net: transfer stalled after %d rounds (link dead?)", attempts)
		}
		// Send up to a window of segments from base.
		end := base + r.window
		if end > len(segs) {
			end = len(segs)
		}
		lossAt := -1
		var lastArrive sim.Time
		for i := base; i < end; i++ {
			arrive, ok := r.link.Send(t, segs[i].Bytes)
			lastArrive = arrive
			if !ok {
				lossAt = i
				break
			}
			// Delivered in order (go-back-N receiver discards gaps, and
			// we stop at the first loss, so order holds).
			r.delivered = append(r.delivered, segs[i])
			r.ackedSeq++
		}
		if lossAt < 0 {
			// Whole window delivered; cumulative ack returns after the
			// propagation delay (approximated inside lastArrive).
			base = end
			t = lastArrive
			continue
		}
		// Loss: everything from lossAt is resent after the RTO.
		r.retrans += int64(end - lossAt)
		t = lastArrive + r.rto
		base = lossAt
	}
	return t, nil
}

// VerifyInOrder checks the delivered stream against the sent one.
func VerifyInOrder(sent, delivered []Segment) error {
	if len(delivered) < len(sent) {
		return fmt.Errorf("net: delivered %d of %d segments", len(delivered), len(sent))
	}
	j := 0
	for i := range sent {
		if j >= len(delivered) {
			return fmt.Errorf("net: segment %d never delivered", sent[i].Seq)
		}
		if delivered[j].Seq != sent[i].Seq {
			return fmt.Errorf("net: out-of-order delivery at %d: got seq %d want %d",
				j, delivered[j].Seq, sent[i].Seq)
		}
		j++
	}
	return nil
}
