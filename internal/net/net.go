// Package net provides the functional Ethernet substrate: packet and
// flow models, serializing link models with preamble/IFG overhead, and
// header checksum helpers. The Network RBB, the bump-in-the-wire
// applications and the TCP transmission benchmark run on this substrate.
package net

import (
	"encoding/binary"
	"fmt"

	"harmonia/internal/sim"
)

// HWAddr is a 48-bit Ethernet address.
type HWAddr [6]byte

// String formats the address conventionally.
func (a HWAddr) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", a[0], a[1], a[2], a[3], a[4], a[5])
}

// IsMulticast reports whether the group bit is set.
func (a HWAddr) IsMulticast() bool { return a[0]&1 == 1 }

// IPAddr is an IPv4 address.
type IPAddr [4]byte

// String formats the address in dotted quad form.
func (a IPAddr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// IPv4 builds an address from octets.
func IPv4(a, b, c, d byte) IPAddr { return IPAddr{a, b, c, d} }

// IP protocol numbers.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Packet is a simplified Ethernet/IPv4/L4 frame. WireBytes is the full
// on-wire frame length (headers + payload + FCS); Payload carries
// application data when functional processing needs it.
type Packet struct {
	DstMAC, SrcMAC   HWAddr
	SrcIP, DstIP     IPAddr
	Proto            uint8
	SrcPort, DstPort uint16
	Seq              uint32
	WireBytes        int
	Payload          []byte
}

// Ethernet framing constants.
const (
	MinFrame = 64
	MaxFrame = 9216
	// FrameOverhead is the preamble + SFD + inter-frame gap charged on
	// the wire beyond the frame itself (7+1+12 bytes).
	FrameOverhead = 20
	// HeaderBytes is the Ethernet+IPv4+TCP header footprint of the
	// simplified packet (14 + 20 + 20 + 4 FCS).
	HeaderBytes = 58
)

// FlowKey is the 5-tuple used for stateful flow processing.
type FlowKey struct {
	SrcIP, DstIP     IPAddr
	Proto            uint8
	SrcPort, DstPort uint16
}

// Flow returns the packet's flow key.
func (p *Packet) Flow() FlowKey {
	return FlowKey{SrcIP: p.SrcIP, DstIP: p.DstIP, Proto: p.Proto,
		SrcPort: p.SrcPort, DstPort: p.DstPort}
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{SrcIP: k.DstIP, DstIP: k.SrcIP, Proto: k.Proto,
		SrcPort: k.DstPort, DstPort: k.SrcPort}
}

// Hash returns a stable 64-bit hash of the key (FNV-1a over the tuple
// followed by an avalanche finalizer), usable for ECMP-style selection.
// The finalizer matters: raw FNV's low bits are linear in the input
// bytes, which biases modulo-style backend picks.
func (k FlowKey) Hash() uint64 {
	var buf [13]byte
	copy(buf[0:4], k.SrcIP[:])
	copy(buf[4:8], k.DstIP[:])
	buf[8] = k.Proto
	binary.BigEndian.PutUint16(buf[9:11], k.SrcPort)
	binary.BigEndian.PutUint16(buf[11:13], k.DstPort)
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range buf {
		h ^= uint64(b)
		h *= prime64
	}
	// splitmix64 finalizer.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Checksum computes the ones-complement Internet checksum over data —
// the operation the Host Network application offloads.
func Checksum(data []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(data); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(data[i : i+2]))
	}
	if len(data)%2 == 1 {
		sum += uint32(data[len(data)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

// Link models a serializing Ethernet link: frames occupy the wire for
// their serialization time plus fixed framing overhead, then arrive
// after the propagation delay.
type Link struct {
	name      string
	gbps      float64
	propDelay sim.Time
	busyUntil sim.Time
	frames    int64
	bytes     int64
}

// NewLink returns a link of the given rate and propagation delay.
func NewLink(name string, gbps float64, propDelay sim.Time) *Link {
	if gbps <= 0 {
		panic(fmt.Sprintf("net: link %q rate %v must be positive", name, gbps))
	}
	return &Link{name: name, gbps: gbps, propDelay: propDelay}
}

// Gbps reports the line rate.
func (l *Link) Gbps() float64 { return l.gbps }

// Transmit serializes a frame of wireBytes starting no earlier than now
// and returns its arrival time at the far end.
func (l *Link) Transmit(now sim.Time, wireBytes int) (arrive sim.Time) {
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := sim.Time(float64(wireBytes+FrameOverhead) * 8 / l.gbps * float64(sim.Nanosecond))
	if ser < 1 {
		ser = 1
	}
	l.busyUntil = start + ser
	l.frames++
	l.bytes += int64(wireBytes)
	return l.busyUntil + l.propDelay
}

// Busy reports when the link becomes free.
func (l *Link) Busy() sim.Time { return l.busyUntil }

// Frames reports transmitted frame count.
func (l *Link) Frames() int64 { return l.frames }

// Bytes reports transmitted payload byte count (frames, not overhead).
func (l *Link) Bytes() int64 { return l.bytes }

// EffectiveGbps reports the goodput achievable at a frame size, after
// framing overhead — the reason small-packet throughput sits below line
// rate in Figs. 10a and 17.
func EffectiveGbps(lineGbps float64, frameBytes int) float64 {
	return lineGbps * float64(frameBytes) / float64(frameBytes+FrameOverhead)
}
