package net

import "testing"

// FuzzParseFrame drives the wire-frame parser with arbitrary bytes: it
// must never panic, and any frame it accepts must re-marshal and
// re-parse to the same flow.
func FuzzParseFrame(f *testing.F) {
	p := &Packet{
		DstMAC: HWAddr{2, 0, 0, 0, 0, 1}, SrcMAC: HWAddr{2, 0, 0, 0, 0, 2},
		SrcIP: IPv4(10, 0, 0, 1), DstIP: IPv4(10, 0, 0, 2),
		Proto: ProtoTCP, SrcPort: 443, DstPort: 80, Seq: 7, WireBytes: 96,
	}
	seed, _ := p.MarshalFrame()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, 64))
	f.Fuzz(func(t *testing.T, raw []byte) {
		got, err := ParseFrame(raw)
		if err != nil {
			return
		}
		got.WireBytes = len(raw)
		// Trim the payload back under the frame budget before
		// re-marshalling (ParseFrame keeps padding).
		room := len(raw) - 58
		if len(got.Payload) > room {
			got.Payload = got.Payload[:room]
		}
		out, err := got.MarshalFrame()
		if err != nil {
			t.Fatalf("accepted frame failed to re-marshal: %v", err)
		}
		again, err := ParseFrame(out)
		if err != nil {
			t.Fatalf("re-marshalled frame failed to parse: %v", err)
		}
		if again.Flow() != got.Flow() || again.Seq != got.Seq {
			t.Fatal("frame identity not preserved")
		}
	})
}
