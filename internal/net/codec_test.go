package net

import (
	"bytes"
	"testing"
	"testing/quick"
)

func framePacket(size int, payload []byte) *Packet {
	return &Packet{
		DstMAC: HWAddr{0x02, 0, 0, 0, 0, 1}, SrcMAC: HWAddr{0x02, 0, 0, 0, 0, 2},
		SrcIP: IPv4(10, 0, 0, 1), DstIP: IPv4(10, 0, 0, 2),
		Proto: ProtoTCP, SrcPort: 443, DstPort: 5001, Seq: 77,
		WireBytes: size, Payload: payload,
	}
}

func TestFrameRoundTrip(t *testing.T) {
	p := framePacket(128, []byte("hello wire"))
	buf, err := p.MarshalFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != 128 {
		t.Fatalf("frame length %d, want 128", len(buf))
	}
	got, err := ParseFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Flow() != p.Flow() || got.Seq != p.Seq || got.DstMAC != p.DstMAC || got.SrcMAC != p.SrcMAC {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if !bytes.HasPrefix(got.Payload, []byte("hello wire")) {
		t.Errorf("payload lost: %q", got.Payload)
	}
}

func TestFrameValidation(t *testing.T) {
	small := framePacket(32, nil) // below header minimum
	if _, err := small.MarshalFrame(); err == nil {
		t.Error("tiny frame accepted")
	}
	over := framePacket(64, make([]byte, 100))
	if _, err := over.MarshalFrame(); err == nil {
		t.Error("oversized payload accepted")
	}
	if _, err := ParseFrame(make([]byte, 10)); err == nil {
		t.Error("short buffer parsed")
	}
}

func TestFrameFCSDetectsCorruption(t *testing.T) {
	p := framePacket(96, []byte{1, 2, 3})
	buf, _ := p.MarshalFrame()
	for _, pos := range []int{0, 20, 40, len(buf) - 1} {
		bad := append([]byte(nil), buf...)
		bad[pos] ^= 0x01
		if _, err := ParseFrame(bad); err == nil {
			t.Errorf("corruption at byte %d undetected", pos)
		}
	}
}

func TestFrameIPChecksumSelfVerifies(t *testing.T) {
	p := framePacket(64, nil)
	buf, _ := p.MarshalFrame()
	ip := buf[ethHeaderLen : ethHeaderLen+ipv4HeaderLen]
	if Checksum(ip) != 0 {
		t.Error("IPv4 header checksum does not self-verify")
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, seq uint32, a, b byte, payRaw []byte) bool {
		if len(payRaw) > 64 {
			payRaw = payRaw[:64]
		}
		p := framePacket(MinFrame+64, payRaw)
		p.SrcPort, p.DstPort, p.Seq = sp, dp, seq
		p.SrcIP = IPv4(10, 0, a, b)
		buf, err := p.MarshalFrame()
		if err != nil {
			return false
		}
		got, err := ParseFrame(buf)
		if err != nil {
			return false
		}
		return got.Flow() == p.Flow() && got.Seq == seq && bytes.HasPrefix(got.Payload, payRaw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
