package net

import (
	"bytes"
	"testing"

	"harmonia/internal/mem"
	"harmonia/internal/sim"
)

// connectedQPs returns a connected pair with the given loss periods on
// each direction.
func connectedQPs(t *testing.T, dropAB, dropBA int) (*QP, *QP) {
	t.Helper()
	a, err := NewQP(1, mem.NewStore(), NewLossyLink("a->b", 100, sim.Microsecond, dropAB), 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewQP(2, mem.NewStore(), NewLossyLink("b->a", 100, sim.Microsecond, dropBA), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := Connect(a, b); err != nil {
		t.Fatal(err)
	}
	return a, b
}

func TestQPValidation(t *testing.T) {
	if _, err := NewQP(1, nil, nil, 0); err == nil {
		t.Error("nil deps accepted")
	}
	link := NewLossyLink("l", 100, 0, 0)
	if _, err := NewQP(1, mem.NewStore(), link, 0); err == nil {
		t.Error("zero MTU accepted")
	}
	if err := Connect(nil, nil); err == nil {
		t.Error("nil connect accepted")
	}
	a, b := connectedQPs(t, 0, 0)
	if err := Connect(a, b); err == nil {
		t.Error("double connect accepted")
	}
	// Unconnected QP cannot post.
	lone, _ := NewQP(9, mem.NewStore(), link, 4096)
	if _, err := lone.Post(0, WorkRequest{ID: 1, Verb: VerbWrite, Bytes: 64}); err == nil {
		t.Error("unconnected post accepted")
	}
	if _, err := a.Post(0, WorkRequest{ID: 1, Verb: VerbWrite, Bytes: 0}); err == nil {
		t.Error("empty WR accepted")
	}
	if _, err := a.Post(0, WorkRequest{ID: 1, Verb: Verb(9), Bytes: 4}); err == nil {
		t.Error("unknown verb accepted")
	}
}

func TestRDMAWriteMovesBytes(t *testing.T) {
	a, b := connectedQPs(t, 0, 0)
	payload := []byte("one-sided write payload")
	a.Memory().Write(0x1000, payload)
	done, err := a.Post(0, WorkRequest{
		ID: 1, Verb: VerbWrite, Bytes: len(payload),
		LocalAddr: 0x1000, RemoteAddr: 0x2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Error("write took no time")
	}
	got := b.Memory().Read(0x2000, len(payload))
	if !bytes.Equal(got, payload) {
		t.Errorf("remote memory = %q", got)
	}
	cqes := a.Poll()
	if len(cqes) != 1 || cqes[0].Status != CompletionOK || cqes[0].Verb != VerbWrite {
		t.Errorf("completions = %+v", cqes)
	}
	// WRITE is one-sided: no peer completion.
	if len(b.Poll()) != 0 {
		t.Error("one-sided write completed on the responder")
	}
}

func TestRDMAReadFetchesBytes(t *testing.T) {
	a, b := connectedQPs(t, 0, 0)
	payload := []byte{9, 8, 7, 6, 5}
	b.Memory().Write(0x500, payload)
	writeDone, _ := a.Post(0, WorkRequest{ID: 1, Verb: VerbWrite, Bytes: 1, LocalAddr: 0, RemoteAddr: 0x900})
	done, err := a.Post(writeDone, WorkRequest{
		ID: 2, Verb: VerbRead, Bytes: len(payload),
		LocalAddr: 0x100, RemoteAddr: 0x500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Memory().Read(0x100, len(payload)), payload) {
		t.Error("read did not fetch remote bytes")
	}
	// READ costs a round trip: strictly longer than the one-way write.
	if done-writeDone <= writeDone {
		t.Logf("read RTT %v vs write %v", done-writeDone, writeDone)
	}
}

func TestRDMASendRecv(t *testing.T) {
	a, b := connectedQPs(t, 0, 0)
	msg := []byte("two-sided message")
	a.Memory().Write(0, msg)
	// Without a posted receive: RNR.
	if _, err := a.Post(0, WorkRequest{ID: 1, Verb: VerbSend, Bytes: len(msg)}); err != nil {
		t.Fatal(err)
	}
	cqes := a.Poll()
	if len(cqes) != 1 || cqes[0].Status != CompletionRNR {
		t.Fatalf("expected RNR, got %+v", cqes)
	}
	// With a receive posted, the message lands in the posted buffer and
	// both sides complete.
	b.PostRecv(0x4000, 64)
	if _, err := a.Post(0, WorkRequest{ID: 2, Verb: VerbSend, Bytes: len(msg)}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b.Memory().Read(0x4000, len(msg)), msg) {
		t.Error("send payload not delivered to posted buffer")
	}
	if cq := a.Poll(); len(cq) != 1 || cq[0].Status != CompletionOK {
		t.Errorf("sender CQ = %+v", cq)
	}
	if cq := b.Poll(); len(cq) != 1 || cq[0].Status != CompletionOK {
		t.Errorf("receiver CQ = %+v", cq)
	}
	// Undersized receive buffer errors.
	b.PostRecv(0x5000, 4)
	if _, err := a.Post(0, WorkRequest{ID: 3, Verb: VerbSend, Bytes: len(msg)}); err == nil {
		t.Error("oversized send into small buffer accepted")
	}
}

func TestRDMAWriteSurvivesLoss(t *testing.T) {
	// Every 5th frame lost: data still lands byte-exact, time rises,
	// retransmissions counted.
	aLossy, bLossy := connectedQPs(t, 5, 0)
	aClean, bClean := connectedQPs(t, 0, 0)
	payload := make([]byte, 64<<10) // 64KB: 16 MTU segments
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	aLossy.Memory().Write(0, payload)
	aClean.Memory().Write(0, payload)
	wr := WorkRequest{ID: 1, Verb: VerbWrite, Bytes: len(payload), RemoteAddr: 0x10000}
	lossyDone, err := aLossy.Post(0, wr)
	if err != nil {
		t.Fatal(err)
	}
	cleanDone, err := aClean.Post(0, wr)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bLossy.Memory().Read(0x10000, len(payload)), payload) {
		t.Error("lossy write corrupted data")
	}
	if !bytes.Equal(bClean.Memory().Read(0x10000, len(payload)), payload) {
		t.Error("clean write corrupted data")
	}
	if aLossy.Retransmissions() == 0 {
		t.Error("loss did not trigger retransmission")
	}
	if lossyDone <= cleanDone {
		t.Errorf("lossy write %v not slower than clean %v", lossyDone, cleanDone)
	}
}

func TestRDMAThroughputNearLineRate(t *testing.T) {
	a, b := connectedQPs(t, 0, 0)
	_ = b
	const chunk = 64 << 10
	var done sim.Time
	const writes = 50
	for i := 0; i < writes; i++ {
		d, err := a.Post(done, WorkRequest{ID: uint64(i), Verb: VerbWrite, Bytes: chunk, RemoteAddr: int64(i) * chunk})
		if err != nil {
			t.Fatal(err)
		}
		done = d
	}
	gbps := float64(writes*chunk*8) / done.Nanoseconds()
	if gbps < 80 {
		t.Errorf("RDMA write throughput %.1f Gbps on a 100G link, want near line rate", gbps)
	}
}
