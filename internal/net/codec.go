package net

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Wire format constants for the simplified Ethernet/IPv4/TCP frame.
const (
	ethHeaderLen  = 14
	ipv4HeaderLen = 20
	tcpHeaderLen  = 20
	fcsLen        = 4
	// minWirePayload pads frames up to the Ethernet minimum.
	etherTypeIPv4 = 0x0800
)

// MarshalFrame serializes the packet into its on-wire bytes: Ethernet
// header, IPv4 header (with a valid header checksum), TCP header,
// payload (padded so the frame length equals WireBytes), and the frame
// check sequence. WireBytes must cover the headers and FCS.
func (p *Packet) MarshalFrame() ([]byte, error) {
	minLen := ethHeaderLen + ipv4HeaderLen + tcpHeaderLen + fcsLen
	if p.WireBytes < minLen {
		return nil, fmt.Errorf("net: frame of %dB cannot hold %dB of headers", p.WireBytes, minLen)
	}
	payloadRoom := p.WireBytes - minLen
	if len(p.Payload) > payloadRoom {
		return nil, fmt.Errorf("net: payload %dB exceeds frame room %dB", len(p.Payload), payloadRoom)
	}
	buf := make([]byte, p.WireBytes)

	// Ethernet.
	copy(buf[0:6], p.DstMAC[:])
	copy(buf[6:12], p.SrcMAC[:])
	binary.BigEndian.PutUint16(buf[12:14], etherTypeIPv4)

	// IPv4.
	ip := buf[ethHeaderLen:]
	ip[0] = 0x45 // version 4, IHL 5
	totalLen := p.WireBytes - ethHeaderLen - fcsLen
	binary.BigEndian.PutUint16(ip[2:4], uint16(totalLen))
	ip[8] = 64 // TTL
	ip[9] = p.Proto
	copy(ip[12:16], p.SrcIP[:])
	copy(ip[16:20], p.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], 0)
	csum := Checksum(ip[:ipv4HeaderLen])
	binary.BigEndian.PutUint16(ip[10:12], csum)

	// TCP (simplified: ports + seq).
	tcp := ip[ipv4HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], p.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:4], p.DstPort)
	binary.BigEndian.PutUint32(tcp[4:8], p.Seq)
	tcp[12] = 5 << 4 // data offset

	copy(tcp[tcpHeaderLen:], p.Payload)

	// FCS over everything before it.
	fcs := crc32.ChecksumIEEE(buf[:p.WireBytes-fcsLen])
	binary.BigEndian.PutUint32(buf[p.WireBytes-fcsLen:], fcs)
	return buf, nil
}

// ParseFrame validates and decodes an on-wire frame: the FCS and the
// IPv4 header checksum must verify.
func ParseFrame(buf []byte) (*Packet, error) {
	minLen := ethHeaderLen + ipv4HeaderLen + tcpHeaderLen + fcsLen
	if len(buf) < minLen {
		return nil, fmt.Errorf("net: frame of %dB too short", len(buf))
	}
	// FCS first — a corrupted frame is dropped at the MAC.
	want := binary.BigEndian.Uint32(buf[len(buf)-fcsLen:])
	if got := crc32.ChecksumIEEE(buf[:len(buf)-fcsLen]); got != want {
		return nil, fmt.Errorf("net: FCS mismatch (%#x != %#x)", got, want)
	}
	p := &Packet{WireBytes: len(buf)}
	copy(p.DstMAC[:], buf[0:6])
	copy(p.SrcMAC[:], buf[6:12])
	if et := binary.BigEndian.Uint16(buf[12:14]); et != etherTypeIPv4 {
		return nil, fmt.Errorf("net: unsupported ethertype %#04x", et)
	}
	ip := buf[ethHeaderLen:]
	if ip[0]>>4 != 4 || ip[0]&0xf != 5 {
		return nil, fmt.Errorf("net: unsupported IP version/IHL %#02x", ip[0])
	}
	if Checksum(ip[:ipv4HeaderLen]) != 0 {
		return nil, fmt.Errorf("net: IPv4 header checksum mismatch")
	}
	p.Proto = ip[9]
	copy(p.SrcIP[:], ip[12:16])
	copy(p.DstIP[:], ip[16:20])
	tcp := ip[ipv4HeaderLen:]
	p.SrcPort = binary.BigEndian.Uint16(tcp[0:2])
	p.DstPort = binary.BigEndian.Uint16(tcp[2:4])
	p.Seq = binary.BigEndian.Uint32(tcp[4:8])
	payload := tcp[tcpHeaderLen : len(tcp)-fcsLen]
	// Trim trailing padding zeros only if the original payload length
	// is unknown; keep the raw slice — callers that care about exact
	// payload length carry it in-band.
	p.Payload = append([]byte(nil), payload...)
	return p, nil
}
