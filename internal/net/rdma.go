package net

import (
	"fmt"

	"harmonia/internal/mem"
	"harmonia/internal/sim"
)

// Verb is an RDMA operation type.
type Verb int

// RDMA verbs.
const (
	VerbSend Verb = iota
	VerbWrite
	VerbRead
)

// String names the verb.
func (v Verb) String() string {
	switch v {
	case VerbSend:
		return "send"
	case VerbWrite:
		return "write"
	case VerbRead:
		return "read"
	default:
		return fmt.Sprintf("verb(%d)", int(v))
	}
}

// CompletionStatus reports how a work request finished.
type CompletionStatus int

// Completion statuses.
const (
	CompletionOK CompletionStatus = iota
	// CompletionRNR: the responder had no receive buffer posted.
	CompletionRNR
	// CompletionError covers transport failures.
	CompletionError
)

// WorkRequest is one queued RDMA operation.
type WorkRequest struct {
	ID    uint64
	Verb  Verb
	Bytes int
	// LocalAddr is the source (SEND/WRITE) or destination (READ) in
	// local memory.
	LocalAddr int64
	// RemoteAddr is the target for one-sided WRITE/READ.
	RemoteAddr int64
}

// Completion is a completion-queue entry.
type Completion struct {
	ID     uint64
	Verb   Verb
	Status CompletionStatus
	At     sim.Time
}

// recvBuffer is a posted receive.
type recvBuffer struct {
	addr  int64
	bytes int
}

// QP is an RDMA queue pair: a send path to its connected peer over the
// reliable transport, registered local memory, posted receive buffers
// and a completion queue. It models the flow-level transport instance
// the Network RBB provides for RDMA-class applications.
type QP struct {
	id   uint32
	mtu  int
	tx   *Reliable
	peer *QP
	// memory is the QP's registered region.
	memory *mem.Store
	recvQ  []recvBuffer
	cq     []Completion
}

// NewQP returns a queue pair sending over txLink with the given MTU.
func NewQP(id uint32, memory *mem.Store, txLink *LossyLink, mtu int) (*QP, error) {
	if memory == nil || txLink == nil {
		return nil, fmt.Errorf("net: QP %d requires memory and a link", id)
	}
	if mtu <= 0 {
		return nil, fmt.Errorf("net: QP %d MTU %d must be positive", id, mtu)
	}
	tx, err := NewReliable(txLink, 16, 50*sim.Microsecond)
	if err != nil {
		return nil, err
	}
	return &QP{id: id, mtu: mtu, tx: tx, memory: memory}, nil
}

// Connect pairs two queue pairs.
func Connect(a, b *QP) error {
	if a == nil || b == nil {
		return fmt.Errorf("net: cannot connect nil QPs")
	}
	if a.peer != nil || b.peer != nil {
		return fmt.Errorf("net: QP already connected")
	}
	a.peer, b.peer = b, a
	return nil
}

// Memory exposes the registered region (for test setup).
func (qp *QP) Memory() *mem.Store { return qp.memory }

// PostRecv posts a receive buffer for incoming SENDs.
func (qp *QP) PostRecv(addr int64, bytes int) {
	qp.recvQ = append(qp.recvQ, recvBuffer{addr: addr, bytes: bytes})
}

// Poll drains the completion queue.
func (qp *QP) Poll() []Completion {
	out := qp.cq
	qp.cq = nil
	return out
}

// Retransmissions reports transport-level retries on the send path.
func (qp *QP) Retransmissions() int64 { return qp.tx.Retransmissions() }

// segments chops a transfer into MTU-sized wire segments.
func (qp *QP) segments(bytes int) []Segment {
	var segs []Segment
	seq := uint32(0)
	for bytes > 0 {
		n := bytes
		if n > qp.mtu {
			n = qp.mtu
		}
		segs = append(segs, Segment{Seq: seq, Bytes: n + HeaderBytes})
		seq++
		bytes -= n
	}
	return segs
}

// complete records a CQE.
func (qp *QP) complete(wr WorkRequest, status CompletionStatus, at sim.Time) {
	qp.cq = append(qp.cq, Completion{ID: wr.ID, Verb: wr.Verb, Status: status, At: at})
}

// Post executes a work request at time now and returns its completion
// time. Data movement is functional: bytes really move between the
// registered memory regions, and loss on the wire costs retransmission
// time without corrupting data.
func (qp *QP) Post(now sim.Time, wr WorkRequest) (sim.Time, error) {
	if qp.peer == nil {
		return now, fmt.Errorf("net: QP %d not connected", qp.id)
	}
	if wr.Bytes <= 0 {
		return now, fmt.Errorf("net: work request %d has no data", wr.ID)
	}
	switch wr.Verb {
	case VerbSend:
		if len(qp.peer.recvQ) == 0 {
			// Receiver not ready: RNR completion, no data moves.
			qp.complete(wr, CompletionRNR, now)
			return now, nil
		}
		rb := qp.peer.recvQ[0]
		if rb.bytes < wr.Bytes {
			qp.complete(wr, CompletionError, now)
			return now, fmt.Errorf("net: recv buffer %dB too small for %dB send", rb.bytes, wr.Bytes)
		}
		qp.peer.recvQ = qp.peer.recvQ[1:]
		done, err := qp.tx.Transfer(now, qp.segments(wr.Bytes))
		if err != nil {
			qp.complete(wr, CompletionError, done)
			return done, err
		}
		data := qp.memory.Read(wr.LocalAddr, wr.Bytes)
		qp.peer.memory.Write(rb.addr, data)
		qp.complete(wr, CompletionOK, done)
		qp.peer.cq = append(qp.peer.cq, Completion{ID: wr.ID, Verb: VerbSend, Status: CompletionOK, At: done})
		return done, nil

	case VerbWrite:
		done, err := qp.tx.Transfer(now, qp.segments(wr.Bytes))
		if err != nil {
			qp.complete(wr, CompletionError, done)
			return done, err
		}
		data := qp.memory.Read(wr.LocalAddr, wr.Bytes)
		qp.peer.memory.Write(wr.RemoteAddr, data)
		qp.complete(wr, CompletionOK, done)
		return done, nil

	case VerbRead:
		// Request goes out on our path; the data returns on the peer's.
		reqDone, err := qp.tx.Transfer(now, []Segment{{Bytes: HeaderBytes}})
		if err != nil {
			qp.complete(wr, CompletionError, reqDone)
			return reqDone, err
		}
		if qp.peer.peer == nil {
			qp.complete(wr, CompletionError, reqDone)
			return reqDone, fmt.Errorf("net: peer QP has no return path")
		}
		done, err := qp.peer.tx.Transfer(reqDone, qp.segments(wr.Bytes))
		if err != nil {
			qp.complete(wr, CompletionError, done)
			return done, err
		}
		data := qp.peer.memory.Read(wr.RemoteAddr, wr.Bytes)
		qp.memory.Write(wr.LocalAddr, data)
		qp.complete(wr, CompletionOK, done)
		return done, nil

	default:
		return now, fmt.Errorf("net: unknown verb %v", wr.Verb)
	}
}
