package platform

import "testing"

func TestCatalogDevices(t *testing.T) {
	cat := Catalog()
	if len(cat) != 4 {
		t.Fatalf("catalog has %d devices, want 4", len(cat))
	}
	tests := []struct {
		name    string
		vendor  Vendor
		chip    string
		pcieGen int
		lanes   int
		hasHBM  bool
		hasDDR  bool
	}{
		{"device-a", Xilinx, "XCVU35P", 4, 8, true, true},
		{"device-b", InHouse, "XCVU9P", 3, 16, false, true},
		{"device-c", InHouse, "Agilex7", 4, 16, false, false},
		{"device-d", Intel, "Agilex7", 4, 16, false, true},
	}
	for _, tt := range tests {
		d, ok := cat[tt.name]
		if !ok {
			t.Errorf("device %q missing", tt.name)
			continue
		}
		if d.Vendor != tt.vendor {
			t.Errorf("%s vendor = %q, want %q", tt.name, d.Vendor, tt.vendor)
		}
		if d.Chip.Name != tt.chip {
			t.Errorf("%s chip = %q, want %q", tt.name, d.Chip.Name, tt.chip)
		}
		pcie, ok := d.PCIe()
		if !ok {
			t.Errorf("%s has no PCIe", tt.name)
			continue
		}
		if pcie.PCIeGen != tt.pcieGen || pcie.PCIeLanes != tt.lanes {
			t.Errorf("%s PCIe = Gen%dx%d, want Gen%dx%d",
				tt.name, pcie.PCIeGen, pcie.PCIeLanes, tt.pcieGen, tt.lanes)
		}
		if d.HasPeripheral("HBM") != tt.hasHBM {
			t.Errorf("%s HBM = %v, want %v", tt.name, d.HasPeripheral("HBM"), tt.hasHBM)
		}
		if d.HasPeripheral("DDR4") != tt.hasDDR {
			t.Errorf("%s DDR4 = %v, want %v", tt.name, d.HasPeripheral("DDR4"), tt.hasDDR)
		}
	}
}

func TestLookup(t *testing.T) {
	if _, err := Lookup("device-a"); err != nil {
		t.Errorf("Lookup(device-a): %v", err)
	}
	if _, err := Lookup("device-z"); err == nil {
		t.Error("Lookup(device-z) should fail")
	}
	names := CatalogNames()
	if len(names) != 4 || names[0] != "device-a" || names[3] != "device-d" {
		t.Errorf("CatalogNames = %v", names)
	}
}

func TestBandwidthAggregation(t *testing.T) {
	a := DeviceA()
	// 2 × QSFP28 = 200 Gbps network.
	if got := a.NetworkGbps(); got != 200 {
		t.Errorf("device-a network = %v Gbps, want 200", got)
	}
	// HBM (3680) + 1 DDR4 channel (153.6).
	if got := a.MemoryGbps(); got != 3680+153.6 {
		t.Errorf("device-a memory = %v Gbps", got)
	}
	// Gen4 x8 = 8 × 15.75.
	if got := a.HostGbps(); got != 8*15.75 {
		t.Errorf("device-a host = %v Gbps", got)
	}
}

func TestPCIeGenerationScaling(t *testing.T) {
	// Host bandwidth roughly doubles per generation at fixed lanes.
	g3 := NewPCIe(3, 16).TotalGbps()
	g4 := NewPCIe(4, 16).TotalGbps()
	g5 := NewPCIe(5, 16).TotalGbps()
	if !(g3 < g4 && g4 < g5) {
		t.Errorf("PCIe bandwidth not increasing: %v %v %v", g3, g4, g5)
	}
	if r := g4 / g3; r < 1.9 || r > 2.1 {
		t.Errorf("Gen4/Gen3 ratio = %v, want about 2", r)
	}
	if r := g5 / g4; r < 1.9 || r > 2.1 {
		t.Errorf("Gen5/Gen4 ratio = %v, want about 2", r)
	}
}

func TestNewPCIePanicsOnBadGen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPCIe(2, 8) did not panic")
		}
	}()
	NewPCIe(2, 8)
}

func TestHBMFasterThanDDR(t *testing.T) {
	// Paper: 460 GB/s HBM vs 19.2 GB/s per DDR channel.
	hbm := NewHBM().TotalGbps()
	ddr := NewDDR4(1).TotalGbps()
	if hbm/ddr < 20 {
		t.Errorf("HBM/DDR ratio = %v, want > 20", hbm/ddr)
	}
}

func TestFamilies(t *testing.T) {
	fams := Families()
	if len(fams) != 10 {
		t.Errorf("Families() = %d, want 10", len(fams))
	}
	seen := map[Vendor]int{}
	for _, f := range fams {
		if f.Capacity.LUT <= 0 || f.ProcessNM <= 0 {
			t.Errorf("family %s has invalid parameters", f.Name)
		}
		seen[f.Vendor]++
	}
	if seen[Xilinx] == 0 || seen[Intel] == 0 {
		t.Error("families must span both commercial vendors")
	}
}

func TestPeripheralQueries(t *testing.T) {
	d := DeviceB()
	if _, ok := d.Peripheral(Memory, "HBM"); ok {
		t.Error("device-b should not have HBM")
	}
	ddr, ok := d.Peripheral(Memory, "DDR4")
	if !ok || ddr.Count != 2 {
		t.Errorf("device-b DDR4 = %+v, %v, want 2 channels", ddr, ok)
	}
	if got := len(d.PeripheralsOf(Network)); got != 1 {
		t.Errorf("device-b network peripherals = %d, want 1", got)
	}
	if _, ok := d.Peripheral(Network, ""); !ok {
		t.Error("kind-only peripheral lookup failed")
	}
}

func TestFleetHistoryShape(t *testing.T) {
	hist := FleetHistory()
	if len(hist) != 5 || hist[0].Year != 2020 || hist[4].Year != 2024 {
		t.Fatalf("history years wrong: %+v", hist)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].TotalFPGAs <= hist[i-1].TotalFPGAs {
			t.Errorf("total fleet not growing at %d", hist[i].Year)
		}
		if hist[i].NewDevices < hist[i-1].NewDevices {
			t.Errorf("new-device variety shrinking at %d", hist[i].Year)
		}
	}
	if hist[4].TotalFPGAs < 10_000 {
		t.Error("2024 fleet should be tens of thousands")
	}
	if DeviceVariety() < 10 {
		t.Errorf("DeviceVariety() = %d, want >= 10", DeviceVariety())
	}
}
