// Package platform models heterogeneous FPGA platforms: vendors, chip
// families, peripherals (network cages, memory, PCIe), complete devices,
// and the datacenter fleet. The catalog includes the four production
// devices the paper evaluates (Table 2) plus the additional chip
// families §3.3.1 lists as supported.
//
// Chip capacities follow the public datasheets where available and are
// otherwise representative; every evaluated metric depends on parameter
// relationships (which device has HBM, which PCIe generation, relative
// capacity), not on exact silicon counts.
package platform

import (
	"fmt"
	"sort"

	"harmonia/internal/hdl"
)

// Vendor identifies an FPGA supplier.
type Vendor string

// Vendors appearing in the paper's fleet.
const (
	Xilinx  Vendor = "xilinx"
	Intel   Vendor = "intel"
	InHouse Vendor = "inhouse" // internally customized devices
)

// ChipFamily describes an FPGA die family.
type ChipFamily struct {
	Name      string
	Vendor    Vendor
	ProcessNM int
	Capacity  hdl.Resources
}

// Chip families supported by Harmonia (§3.3.1).
var (
	XCVU3P = ChipFamily{Name: "XCVU3P", Vendor: Xilinx, ProcessNM: 16,
		Capacity: hdl.Resources{LUT: 394_080, REG: 788_160, BRAM: 720, URAM: 320, DSP: 2_280}}
	XCVU9P = ChipFamily{Name: "XCVU9P", Vendor: Xilinx, ProcessNM: 16,
		Capacity: hdl.Resources{LUT: 1_182_240, REG: 2_364_480, BRAM: 2_160, URAM: 960, DSP: 6_840}}
	XCVU23P = ChipFamily{Name: "XCVU23P", Vendor: Xilinx, ProcessNM: 16,
		Capacity: hdl.Resources{LUT: 1_027_320, REG: 2_054_640, BRAM: 2_112, URAM: 128, DSP: 1_320}}
	XCVU35P = ChipFamily{Name: "XCVU35P", Vendor: Xilinx, ProcessNM: 16,
		Capacity: hdl.Resources{LUT: 872_160, REG: 1_744_320, BRAM: 1_344, URAM: 640, DSP: 5_952}}
	XCVU125 = ChipFamily{Name: "XCVU125", Vendor: Xilinx, ProcessNM: 20,
		Capacity: hdl.Resources{LUT: 716_160, REG: 1_432_320, BRAM: 2_520, URAM: 0, DSP: 1_200}}
	Zynq7000 = ChipFamily{Name: "Zynq7000", Vendor: Xilinx, ProcessNM: 28,
		Capacity: hdl.Resources{LUT: 277_400, REG: 554_800, BRAM: 755, URAM: 0, DSP: 2_020}}
	Agilex5 = ChipFamily{Name: "Agilex5", Vendor: Intel, ProcessNM: 10,
		Capacity: hdl.Resources{LUT: 656_000, REG: 1_312_000, BRAM: 2_103, URAM: 0, DSP: 1_640}}
	Agilex7 = ChipFamily{Name: "Agilex7", Vendor: Intel, ProcessNM: 10,
		Capacity: hdl.Resources{LUT: 912_800, REG: 1_825_600, BRAM: 4_510, URAM: 0, DSP: 4_510}}
	Stratix10 = ChipFamily{Name: "Stratix10", Vendor: Intel, ProcessNM: 14,
		Capacity: hdl.Resources{LUT: 933_120, REG: 1_866_240, BRAM: 3_732, URAM: 0, DSP: 5_760}}
	Arria10 = ChipFamily{Name: "Arria10", Vendor: Intel, ProcessNM: 20,
		Capacity: hdl.Resources{LUT: 427_200, REG: 854_400, BRAM: 2_713, URAM: 0, DSP: 1_518}}
)

// Families lists every supported chip family.
func Families() []ChipFamily {
	return []ChipFamily{
		XCVU3P, XCVU9P, XCVU23P, XCVU35P, XCVU125, Zynq7000,
		Agilex5, Agilex7, Stratix10, Arria10,
	}
}

// PeripheralKind classifies an off-chip peripheral.
type PeripheralKind string

// Peripheral kinds.
const (
	Network PeripheralKind = "network"
	Memory  PeripheralKind = "memory"
	Host    PeripheralKind = "host"
)

// Peripheral describes one off-chip resource attached to a device.
type Peripheral struct {
	Kind PeripheralKind
	// Model names the part: "QSFP28", "QSFP56", "QSFP112", "DSFP",
	// "DDR3", "DDR4", "HBM", "PCIe".
	Model string
	// Count is how many instances the card carries (ports, channels
	// for DDR-style parts; HBM counts as one stack with 32 pseudo-
	// channels handled by the memory model).
	Count int
	// GbpsPerUnit is the per-instance data rate in gigabits/second.
	GbpsPerUnit float64
	// PCIeGen and PCIeLanes are set for host peripherals.
	PCIeGen   int
	PCIeLanes int
}

// TotalGbps reports the aggregate data rate of the peripheral.
func (p Peripheral) TotalGbps() float64 { return float64(p.Count) * p.GbpsPerUnit }

// Network cage constructors. Per-port rates follow the deployed optics:
// QSFP28 100G, QSFP56 200G, QSFP112 400G, DSFP 100G.

// NewQSFP28 returns n QSFP28 (100G) cages.
func NewQSFP28(n int) Peripheral {
	return Peripheral{Kind: Network, Model: "QSFP28", Count: n, GbpsPerUnit: 100}
}

// NewQSFP56 returns n QSFP56 (200G) cages.
func NewQSFP56(n int) Peripheral {
	return Peripheral{Kind: Network, Model: "QSFP56", Count: n, GbpsPerUnit: 200}
}

// NewQSFP112 returns n QSFP112 (400G) cages.
func NewQSFP112(n int) Peripheral {
	return Peripheral{Kind: Network, Model: "QSFP112", Count: n, GbpsPerUnit: 400}
}

// NewDSFP returns n DSFP (100G) cages.
func NewDSFP(n int) Peripheral {
	return Peripheral{Kind: Network, Model: "DSFP", Count: n, GbpsPerUnit: 100}
}

// Memory constructors. Rates follow the paper: one DDR4 channel delivers
// 19.2 GB/s (153.6 Gbps); an HBM stack delivers 460 GB/s (3680 Gbps)
// across 32 channels.

// NewDDR4 returns n DDR4 channels.
func NewDDR4(n int) Peripheral {
	return Peripheral{Kind: Memory, Model: "DDR4", Count: n, GbpsPerUnit: 153.6}
}

// NewDDR3 returns n DDR3 channels (12.8 GB/s each).
func NewDDR3(n int) Peripheral {
	return Peripheral{Kind: Memory, Model: "DDR3", Count: n, GbpsPerUnit: 102.4}
}

// NewHBM returns an HBM stack.
func NewHBM() Peripheral {
	return Peripheral{Kind: Memory, Model: "HBM", Count: 1, GbpsPerUnit: 3680}
}

// NewPCIe returns a PCIe host connection of the given generation and
// lane count. Effective per-lane rates (after encoding overhead):
// Gen3 ~7.88 Gbps, Gen4 ~15.75 Gbps, Gen5 ~31.5 Gbps.
func NewPCIe(gen, lanes int) Peripheral {
	perLane := map[int]float64{3: 7.88, 4: 15.75, 5: 31.51}[gen]
	if perLane == 0 {
		panic(fmt.Sprintf("platform: unsupported PCIe generation %d", gen))
	}
	return Peripheral{
		Kind: Host, Model: "PCIe", Count: lanes, GbpsPerUnit: perLane,
		PCIeGen: gen, PCIeLanes: lanes,
	}
}

// Device is a complete FPGA card: a chip plus its peripherals.
type Device struct {
	Name        string
	Vendor      Vendor
	Chip        ChipFamily
	Peripherals []Peripheral
}

// Peripheral returns the device's first peripheral of the given kind
// and, if model is non-empty, matching model.
func (d *Device) Peripheral(kind PeripheralKind, model string) (Peripheral, bool) {
	for _, p := range d.Peripherals {
		if p.Kind == kind && (model == "" || p.Model == model) {
			return p, true
		}
	}
	return Peripheral{}, false
}

// PeripheralsOf returns all peripherals of a kind.
func (d *Device) PeripheralsOf(kind PeripheralKind) []Peripheral {
	var out []Peripheral
	for _, p := range d.Peripherals {
		if p.Kind == kind {
			out = append(out, p)
		}
	}
	return out
}

// HasPeripheral reports whether the device carries the given model.
func (d *Device) HasPeripheral(model string) bool {
	for _, p := range d.Peripherals {
		if p.Model == model {
			return true
		}
	}
	return false
}

// NetworkGbps reports the device's aggregate network bandwidth.
func (d *Device) NetworkGbps() float64 {
	var g float64
	for _, p := range d.PeripheralsOf(Network) {
		g += p.TotalGbps()
	}
	return g
}

// MemoryGbps reports the device's aggregate memory bandwidth.
func (d *Device) MemoryGbps() float64 {
	var g float64
	for _, p := range d.PeripheralsOf(Memory) {
		g += p.TotalGbps()
	}
	return g
}

// HostGbps reports the device's PCIe bandwidth.
func (d *Device) HostGbps() float64 {
	var g float64
	for _, p := range d.PeripheralsOf(Host) {
		g += p.TotalGbps()
	}
	return g
}

// PCIe returns the device's host connection.
func (d *Device) PCIe() (Peripheral, bool) { return d.Peripheral(Host, "PCIe") }

// The paper's evaluation devices (Table 2).

// DeviceA: Xilinx XCVU35P — HBM, DDR, QSFP×2, PCIe Gen4×8.
func DeviceA() *Device {
	return &Device{
		Name: "device-a", Vendor: Xilinx, Chip: XCVU35P,
		Peripherals: []Peripheral{NewHBM(), NewDDR4(1), NewQSFP28(2), NewPCIe(4, 8)},
	}
}

// DeviceB: in-house XCVU9P — DDR×2, QSFP×2, PCIe Gen3×16.
func DeviceB() *Device {
	return &Device{
		Name: "device-b", Vendor: InHouse, Chip: XCVU9P,
		Peripherals: []Peripheral{NewDDR4(2), NewQSFP28(2), NewPCIe(3, 16)},
	}
}

// DeviceC: in-house Agilex 7 — DSFP×2, PCIe Gen4×16.
func DeviceC() *Device {
	return &Device{
		Name: "device-c", Vendor: InHouse, Chip: Agilex7,
		Peripherals: []Peripheral{NewDSFP(2), NewPCIe(4, 16)},
	}
}

// DeviceD: Intel Agilex 7 — QSFP×2, PCIe Gen4×16, DDR.
func DeviceD() *Device {
	return &Device{
		Name: "device-d", Vendor: Intel, Chip: Agilex7,
		Peripherals: []Peripheral{NewQSFP28(2), NewPCIe(4, 16), NewDDR4(1)},
	}
}

// Catalog returns the four evaluation devices keyed by name.
func Catalog() map[string]*Device {
	out := make(map[string]*Device, 4)
	for _, d := range []*Device{DeviceA(), DeviceB(), DeviceC(), DeviceD()} {
		out[d.Name] = d
	}
	return out
}

// CatalogNames returns the evaluation device names in order A..D.
func CatalogNames() []string {
	names := make([]string, 0, 4)
	for n := range Catalog() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Lookup returns the named catalog device.
func Lookup(name string) (*Device, error) {
	d, ok := Catalog()[name]
	if !ok {
		return nil, fmt.Errorf("platform: unknown device %q", name)
	}
	return d, nil
}
