package platform

// FleetYear records the fleet state for one calendar year: how many new
// FPGA device models entered production and the total accelerator count
// deployed. The series reproduces the shape of Fig. 3c — both the
// variety of new devices per year and the total fleet grow every year —
// with synthetic magnitudes (the paper reports "tens of thousands" of
// accelerators by 2024).
type FleetYear struct {
	Year       int
	NewDevices int
	TotalFPGAs int
}

// FleetHistory returns the 2020-2024 deployment series.
func FleetHistory() []FleetYear {
	return []FleetYear{
		{Year: 2020, NewDevices: 1, TotalFPGAs: 4_000},
		{Year: 2021, NewDevices: 2, TotalFPGAs: 9_000},
		{Year: 2022, NewDevices: 3, TotalFPGAs: 16_000},
		{Year: 2023, NewDevices: 4, TotalFPGAs: 25_000},
		{Year: 2024, NewDevices: 5, TotalFPGAs: 38_000},
	}
}

// DeviceVariety reports the cumulative number of distinct device models
// in the fleet by the final recorded year.
func DeviceVariety() int {
	n := 0
	for _, y := range FleetHistory() {
		n += y.NewDevices
	}
	return n
}
