package hostsw

import (
	"fmt"

	"harmonia/internal/cmdif"
	"harmonia/internal/obs"
	"harmonia/internal/pcie"
	"harmonia/internal/sim"
	"harmonia/internal/uck"
)

// CmdDriver is the command-based host driver: it marshals command
// packets, moves them over the PCIe control queue (isolated from the
// data path), lets the unified control kernel execute them, and returns
// the response — steps 1-7 of the §3.3.3 walkthrough.
type CmdDriver struct {
	engine *pcie.Engine
	kernel *uck.Kernel
	issued int64
	// inject optionally corrupts the marshalled command on the wire
	// (fault injection); attempt counts from zero.
	inject func(attempt int, buf []byte) []byte
	// MaxRetries bounds checksum-failure retransmissions.
	MaxRetries int
	retries    int64
	drops      int64
	// trace records command-path anomalies (retried commands, drops);
	// nil is the zero-cost disabled state.
	trace *obs.Buffer
}

// NewCmdDriver builds a driver over a DMA engine and a control kernel.
func NewCmdDriver(engine *pcie.Engine, kernel *uck.Kernel) (*CmdDriver, error) {
	if engine == nil || kernel == nil {
		return nil, fmt.Errorf("hostsw: command driver needs an engine and a kernel")
	}
	return &CmdDriver{engine: engine, kernel: kernel, MaxRetries: 3}, nil
}

// SetFaultInjector installs a wire-corruption hook for failure testing.
func (d *CmdDriver) SetFaultInjector(fn func(attempt int, buf []byte) []byte) {
	d.inject = fn
}

// SetTrace attaches (nil detaches) a trace track. Only anomalous
// commands record — ones that needed retransmission or were dropped —
// so the healthy command path stays span-free and cheap.
func (d *CmdDriver) SetTrace(b *obs.Buffer) { d.trace = b }

// Retries reports checksum-triggered retransmissions.
func (d *CmdDriver) Retries() int64 { return d.retries }

// Drops reports commands abandoned after exhausting retransmissions —
// the command-path loss a fleet health monitor reads as missed
// heartbeats.
func (d *CmdDriver) Drops() int64 { return d.drops }

// Do issues one command at time now and returns the response and its
// arrival time back at the host. The command really crosses the wire in
// marshalled form: the kernel executes what it parses, and checksum
// failures are NAKed and retransmitted (the CheckSum error handling of
// Fig. 9).
func (d *CmdDriver) Do(now sim.Time, p *cmdif.Packet) (*cmdif.Packet, sim.Time, error) {
	buf, err := p.Marshal()
	if err != nil {
		return nil, now, err
	}
	t := now
	for attempt := 0; ; attempt++ {
		wire := buf
		if d.inject != nil {
			wire = d.inject(attempt, append([]byte(nil), buf...))
		}
		// Command transfer: the dedicated control queue keeps this
		// isolated from data traffic.
		if err := d.engine.PostControl(t, len(wire)); err != nil {
			return nil, t, err
		}
		arrive, ok := d.engine.Step(t)
		if !ok {
			return nil, t, fmt.Errorf("hostsw: control transfer not dispatched")
		}
		parsed, _, perr := cmdif.Unmarshal(wire)
		if perr != nil {
			// NAK: the kernel rejects the corrupted command; the driver
			// retransmits.
			if attempt >= d.MaxRetries {
				d.drops++
				if d.trace != nil {
					e := obs.Span(obs.CatCmd, "cmd-drop", now, arrive)
					e.K2, e.V2 = "attempts", int64(attempt+1)
					d.trace.Add(e)
				}
				return nil, arrive, fmt.Errorf("hostsw: command dropped after %d attempts: %w",
					attempt+1, perr)
			}
			d.retries++
			t = arrive
			continue
		}
		// Parse + execute in the control kernel.
		resp, execDone, err := d.kernel.Execute(arrive, parsed)
		if err != nil {
			return nil, execDone, err
		}
		// Response upload through the same engine.
		respBuf, err := resp.Marshal()
		if err != nil {
			return nil, execDone, err
		}
		done := d.engine.Link().Transfer(execDone, len(respBuf))
		d.issued++
		if d.trace != nil && attempt > 0 {
			e := obs.Span(obs.CatCmd, "cmd-retry", now, done)
			e.K2, e.V2 = "attempts", int64(attempt+1)
			d.trace.Add(e)
		}
		return resp, done, nil
	}
}

// CmdWrite issues a write-style command (no payload expected back).
func (d *CmdDriver) CmdWrite(now sim.Time, p *cmdif.Packet) (sim.Time, error) {
	_, done, err := d.Do(now, p)
	return done, err
}

// CmdRead issues a read-style command and returns the response payload.
func (d *CmdDriver) CmdRead(now sim.Time, p *cmdif.Packet) ([]uint32, sim.Time, error) {
	resp, done, err := d.Do(now, p)
	if err != nil {
		return nil, done, err
	}
	return resp.Data, done, nil
}

// Issued reports how many commands completed.
func (d *CmdDriver) Issued() int64 { return d.issued }

// RegDriver is the traditional register-level driver commercial
// frameworks expose: every register operation is an individual PCIe
// round trip performed by the host, and the host itself sequences the
// platform-specific choreography.
type RegDriver struct {
	link   *pcie.Link
	module *uck.Module
	ops    int64
	// PollTries models OpWait as repeated status reads.
	PollTries int
}

// NewRegDriver builds a register driver for one module over a link.
func NewRegDriver(link *pcie.Link, module *uck.Module) (*RegDriver, error) {
	if link == nil || module == nil {
		return nil, fmt.Errorf("hostsw: register driver needs a link and a module")
	}
	return &RegDriver{link: link, module: module, PollTries: 3}, nil
}

// regOpBytes is the TLP payload of one register access.
const regOpBytes = 8

// Run executes a register sequence, charging one PCIe round trip per
// access (reads and waits also pay the completion return).
func (d *RegDriver) Run(now sim.Time, ops []uck.RegOp) sim.Time {
	t := now
	for _, op := range ops {
		switch op.Kind {
		case uck.OpWrite:
			t = d.link.Transfer(t, regOpBytes)
			d.module.RegWrite(op.Addr, op.Value)
			d.ops++
		case uck.OpRead:
			t = d.link.Transfer(t, regOpBytes)
			d.module.RegRead(op.Addr)
			t = d.link.Transfer(t, regOpBytes) // completion
			d.ops++
		case uck.OpWait:
			for i := 0; i < d.PollTries; i++ {
				t = d.link.Transfer(t, regOpBytes)
				d.module.RegRead(op.Addr)
				t = d.link.Transfer(t, regOpBytes)
				d.ops++
			}
		}
	}
	return t
}

// Ops reports the register operations performed.
func (d *RegDriver) Ops() int64 { return d.ops }
