// Package hostsw models the host-software side of FPGA control: the
// traditional register-level interface commercial frameworks expose,
// Harmonia's command-based interface, and the migration analysis that
// counts how much software must change when an application moves
// between FPGA platforms (§2.3, §5.2, Fig. 3d, Fig. 13, Table 4).
package hostsw

import (
	"fmt"
	"sort"

	"harmonia/internal/cmdif"
	"harmonia/internal/platform"
	"harmonia/internal/uck"
)

// Task names the three typical configuration activities Table 4
// analyzes.
type Task string

// Configuration tasks.
const (
	Monitoring  Task = "monitoring"       // statistics collection
	NetworkInit Task = "network-init"     // network module initialization
	HostConfig  Task = "host-interaction" // host interaction configuration
)

// Tasks lists the analyzed tasks in canonical order.
func Tasks() []Task { return []Task{Monitoring, NetworkInit, HostConfig} }

// registerBudget is the per-task register-operation count on the
// reference platform, matching Table 4 (84 / 115 / 60).
var registerBudget = map[Task]int{
	Monitoring:  84,
	NetworkInit: 115,
	HostConfig:  60,
}

// commandBudget is the per-task command count (4 / 5 / 4 in Table 4).
var commandBudget = map[Task]int{
	Monitoring:  4,
	NetworkInit: 5,
	HostConfig:  4,
}

// vendorSalt perturbs addresses and sequences per vendor: different
// register maps, widths and operational dependencies (§2.3).
func vendorSalt(v platform.Vendor) uint32 {
	switch v {
	case platform.Intel:
		return 0x4000
	case platform.InHouse:
		return 0x2000
	default:
		return 0x0000
	}
}

// usesWaitStyle reports whether the platform's modules require
// wait-for-status initialization (shell A in Fig. 3d) rather than
// direct writes (shell B).
func usesWaitStyle(v platform.Vendor) bool { return v != platform.Intel }

// RegisterProcedure generates the platform-specific register-operation
// sequence for a task on a device. The sequence is deterministic in
// (vendor, task), so diffing two platforms measures exactly the ad-hoc
// modifications a developer would make.
func RegisterProcedure(dev *platform.Device, task Task) ([]uck.RegOp, error) {
	n, ok := registerBudget[task]
	if !ok {
		return nil, fmt.Errorf("hostsw: unknown task %q", task)
	}
	salt := vendorSalt(dev.Vendor)
	wait := usesWaitStyle(dev.Vendor)
	ops := make([]uck.RegOp, 0, n)
	for i := 0; len(ops) < n; i++ {
		addr := salt + uint32(i)*4
		switch {
		case wait && i%8 == 0:
			// Wait for a status register before the next block.
			ops = append(ops, uck.RegOp{Kind: uck.OpWait, Addr: addr, Value: 1})
		case task == Monitoring && i%3 == 0:
			ops = append(ops, uck.RegOp{Kind: uck.OpRead, Addr: addr})
		default:
			ops = append(ops, uck.RegOp{Kind: uck.OpWrite, Addr: addr, Value: uint32(i)})
		}
	}
	return ops[:n], nil
}

// CommandProcedure generates the command sequence for a task. Commands
// are behavior-level and platform-independent: the sequence depends only
// on the task.
func CommandProcedure(task Task) ([]*cmdif.Packet, error) {
	n, ok := commandBudget[task]
	if !ok {
		return nil, fmt.Errorf("hostsw: unknown task %q", task)
	}
	var cmds []*cmdif.Packet
	switch task {
	case Monitoring:
		cmds = []*cmdif.Packet{
			cmdif.New(1, 0, cmdif.StatsRead),
			cmdif.New(2, 0, cmdif.StatsRead),
			cmdif.New(3, 0, cmdif.StatsRead),
			cmdif.New(0, 0, cmdif.TimeCount),
		}
	case NetworkInit:
		cmds = []*cmdif.Packet{
			cmdif.New(1, 0, cmdif.ModuleReset),
			cmdif.New(1, 0, cmdif.ModuleInit),
			cmdif.New(1, 0, cmdif.TableWrite, 0, 0, 1),
			cmdif.New(1, 0, cmdif.StatusWrite, uck.StatusReady),
			cmdif.New(1, 0, cmdif.StatusRead),
		}
	case HostConfig:
		cmds = []*cmdif.Packet{
			cmdif.New(3, 0, cmdif.ModuleInit),
			cmdif.New(3, 0, cmdif.TableWrite, 1, 0, 64),
			cmdif.New(3, 0, cmdif.StatusWrite, uck.StatusReady),
			cmdif.New(3, 0, cmdif.StatusRead),
		}
	}
	if len(cmds) != n {
		return nil, fmt.Errorf("hostsw: internal budget mismatch for %q", task)
	}
	return cmds, nil
}

// moduleRegBudget is the per-module init-sequence length by category.
var moduleRegBudget = map[string]int{
	"mac":      52,
	"pcie-dma": 68,
	"pcie-phy": 34,
	"ddr4":     46,
	"hbm":      50,
	"mgmt":     24,
	"uck":      8,
}

// ModuleInitRegisters generates the register-level init sequence for a
// module category on a device.
func ModuleInitRegisters(dev *platform.Device, category string) ([]uck.RegOp, error) {
	n, ok := moduleRegBudget[category]
	if !ok {
		return nil, fmt.Errorf("hostsw: unknown module category %q", category)
	}
	salt := vendorSalt(dev.Vendor) + uint32(len(category))*0x100
	wait := usesWaitStyle(dev.Vendor)
	ops := make([]uck.RegOp, 0, n)
	for i := 0; len(ops) < n; i++ {
		addr := salt + uint32(i)*4
		if wait && i%6 == 0 {
			ops = append(ops, uck.RegOp{Kind: uck.OpWait, Addr: addr, Value: 1})
		} else {
			ops = append(ops, uck.RegOp{Kind: uck.OpWrite, Addr: addr, Value: uint32(i) ^ salt})
		}
	}
	return ops[:n], nil
}

// ModuleInitCommand returns the single command that replaces a module's
// register init sequence.
func ModuleInitCommand(rbbID, instanceID uint8) *cmdif.Packet {
	return cmdif.New(rbbID, instanceID, cmdif.ModuleInit)
}

// DiffRegOps counts the modifications needed to turn sequence a into
// sequence b: insertions plus deletions under a longest-common-
// subsequence alignment, the way a developer's diff would count.
func DiffRegOps(a, b []uck.RegOp) int {
	la, lb := len(a), len(b)
	// dp[i][j] = LCS length of a[:i], b[:j].
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	lcs := prev[lb]
	return (la - lcs) + (lb - lcs)
}

// DiffCommands counts modifications between two command sequences by
// the same LCS measure over the marshalled bytes.
func DiffCommands(a, b []*cmdif.Packet) int {
	key := func(p *cmdif.Packet) string {
		buf, err := p.Marshal()
		if err != nil {
			return fmt.Sprintf("!%v", err)
		}
		return string(buf)
	}
	ka := make([]string, len(a))
	for i, p := range a {
		ka[i] = key(p)
	}
	kb := make([]string, len(b))
	for i, p := range b {
		kb[i] = key(p)
	}
	la, lb := len(ka), len(kb)
	prev := make([]int, lb+1)
	cur := make([]int, lb+1)
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			if ka[i-1] == kb[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
		for j := range cur {
			cur[j] = 0
		}
	}
	lcs := prev[lb]
	return (la - lcs) + (lb - lcs)
}

// MigrationReport quantifies the software changes of moving an
// application between two devices.
type MigrationReport struct {
	From, To string
	// RegMods counts register-interface modifications; CmdMods counts
	// command-interface modifications; Ratio is their quotient.
	RegMods int
	CmdMods int
	Ratio   float64
}

// MigrationCost computes the modification counts for initializing the
// given module categories when moving from one device to another.
func MigrationCost(from, to *platform.Device, categories []string) (MigrationReport, error) {
	if from == nil || to == nil {
		return MigrationReport{}, fmt.Errorf("hostsw: nil device")
	}
	cats := append([]string(nil), categories...)
	sort.Strings(cats)
	regMods := 0
	for _, c := range cats {
		a, err := ModuleInitRegisters(from, c)
		if err != nil {
			return MigrationReport{}, err
		}
		b, err := ModuleInitRegisters(to, c)
		if err != nil {
			return MigrationReport{}, err
		}
		regMods += DiffRegOps(a, b)
	}
	// Command sequences are behavior-level and port almost unchanged:
	// the few edits left are the device-open path when the vendor
	// changes, the Options word when the physical interface changes,
	// and one line per peripheral-set difference.
	cmdMods := 0
	if from.Vendor != to.Vendor {
		cmdMods += 2
	}
	fp, fok := from.PCIe()
	tp, tok := to.PCIe()
	if fok != tok || (fok && (fp.PCIeGen != tp.PCIeGen || fp.PCIeLanes != tp.PCIeLanes)) {
		cmdMods++
	}
	for _, kind := range []platform.PeripheralKind{platform.Network, platform.Memory} {
		fm := map[string]bool{}
		for _, p := range from.PeripheralsOf(kind) {
			fm[p.Model] = true
		}
		tm := map[string]bool{}
		for _, p := range to.PeripheralsOf(kind) {
			tm[p.Model] = true
		}
		for m := range fm {
			if !tm[m] {
				cmdMods++
			}
		}
		for m := range tm {
			if !fm[m] {
				cmdMods++
			}
		}
	}
	rep := MigrationReport{From: from.Name, To: to.Name, RegMods: regMods, CmdMods: cmdMods}
	if cmdMods > 0 {
		rep.Ratio = float64(regMods) / float64(cmdMods)
	} else if regMods > 0 {
		rep.Ratio = float64(regMods)
	}
	return rep, nil
}

// ConfigCounts reports Table 4's register-vs-command configuration item
// counts for a task.
func ConfigCounts(task Task) (registers, commands int, err error) {
	r, ok := registerBudget[task]
	if !ok {
		return 0, 0, fmt.Errorf("hostsw: unknown task %q", task)
	}
	return r, commandBudget[task], nil
}
