package hostsw

import (
	"testing"

	"harmonia/internal/cmdif"
	"harmonia/internal/pcie"
	"harmonia/internal/platform"
	"harmonia/internal/uck"
)

func TestRegisterProcedureBudgets(t *testing.T) {
	// Table 4: 84 / 115 / 60 register items per task.
	want := map[Task]int{Monitoring: 84, NetworkInit: 115, HostConfig: 60}
	for task, n := range want {
		ops, err := RegisterProcedure(platform.DeviceC(), task)
		if err != nil {
			t.Fatal(err)
		}
		if len(ops) != n {
			t.Errorf("%s registers = %d, want %d", task, len(ops), n)
		}
	}
	if _, err := RegisterProcedure(platform.DeviceC(), "bogus"); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestCommandProcedureBudgets(t *testing.T) {
	// Table 4: 4 / 5 / 4 commands per task.
	want := map[Task]int{Monitoring: 4, NetworkInit: 5, HostConfig: 4}
	for task, n := range want {
		cmds, err := CommandProcedure(task)
		if err != nil {
			t.Fatal(err)
		}
		if len(cmds) != n {
			t.Errorf("%s commands = %d, want %d", task, len(cmds), n)
		}
	}
	if _, err := CommandProcedure("bogus"); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestTable4Simplification(t *testing.T) {
	// Commands simplify configuration by 15-23x.
	for _, task := range Tasks() {
		regs, cmds, err := ConfigCounts(task)
		if err != nil {
			t.Fatal(err)
		}
		ratio := float64(regs) / float64(cmds)
		if ratio < 15 || ratio > 23 {
			t.Errorf("%s ratio = %.1fx, want 15-23x", task, ratio)
		}
	}
	if _, _, err := ConfigCounts("bogus"); err == nil {
		t.Error("unknown task should fail")
	}
}

func TestRegisterProceduresDifferAcrossVendors(t *testing.T) {
	// The same task requires a different register choreography on a
	// different vendor's device (Fig. 3d).
	c, _ := RegisterProcedure(platform.DeviceC(), NetworkInit)
	d, _ := RegisterProcedure(platform.DeviceD(), NetworkInit)
	if DiffRegOps(c, d) == 0 {
		t.Error("cross-vendor procedures should differ")
	}
	// Same platform: no differences.
	c2, _ := RegisterProcedure(platform.DeviceC(), NetworkInit)
	if DiffRegOps(c, c2) != 0 {
		t.Error("same-platform procedures should match")
	}
}

func TestCommandProceduresPlatformIndependent(t *testing.T) {
	a, _ := CommandProcedure(NetworkInit)
	b, _ := CommandProcedure(NetworkInit)
	if DiffCommands(a, b) != 0 {
		t.Error("command procedures should be platform-independent")
	}
}

func TestWaitStyleFollowsVendor(t *testing.T) {
	// Xilinx-convention devices use wait-style init; Intel devices use
	// direct writes (Fig. 3d's shell A vs shell B).
	xOps, _ := ModuleInitRegisters(platform.DeviceA(), "mac")
	iOps, _ := ModuleInitRegisters(platform.DeviceD(), "mac")
	countWaits := func(ops []uck.RegOp) int {
		n := 0
		for _, op := range ops {
			if op.Kind == uck.OpWait {
				n++
			}
		}
		return n
	}
	if countWaits(xOps) == 0 {
		t.Error("xilinx-style init should include waits")
	}
	if countWaits(iOps) != 0 {
		t.Error("intel-style init should not include waits")
	}
}

func TestDiffRegOps(t *testing.T) {
	a := []uck.RegOp{{Kind: uck.OpWrite, Addr: 0, Value: 1}, {Kind: uck.OpWrite, Addr: 4, Value: 2}}
	if DiffRegOps(a, a) != 0 {
		t.Error("self diff nonzero")
	}
	b := append([]uck.RegOp{}, a...)
	b[1].Value = 9
	// One op changed: one deletion + one insertion.
	if d := DiffRegOps(a, b); d != 2 {
		t.Errorf("single-change diff = %d, want 2", d)
	}
	if d := DiffRegOps(a, nil); d != 2 {
		t.Errorf("diff vs empty = %d, want 2", d)
	}
	if d := DiffRegOps(a, b); d != DiffRegOps(b, a) {
		t.Error("diff not symmetric")
	}
}

func TestMigrationCostCToD(t *testing.T) {
	// Fig. 13: migrating device C -> D costs hundreds of register mods
	// but only a handful of command mods; reduction 88-107x.
	cats := []string{"mac", "pcie-dma", "pcie-phy", "mgmt", "uck"}
	rep, err := MigrationCost(platform.DeviceC(), platform.DeviceD(), cats)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RegMods < 100 {
		t.Errorf("register modifications = %d, want hundreds", rep.RegMods)
	}
	if rep.CmdMods > 10 {
		t.Errorf("command modifications = %d, want a handful", rep.CmdMods)
	}
	if rep.Ratio < 50 || rep.Ratio > 200 {
		t.Errorf("reduction ratio = %.0fx, want order of 88-107x", rep.Ratio)
	}
	// Same-device migration costs nothing.
	same, err := MigrationCost(platform.DeviceC(), platform.DeviceC(), cats)
	if err != nil {
		t.Fatal(err)
	}
	if same.RegMods != 0 || same.CmdMods != 0 {
		t.Errorf("same-device migration = %+v", same)
	}
	if _, err := MigrationCost(nil, platform.DeviceC(), cats); err == nil {
		t.Error("nil device should fail")
	}
	if _, err := MigrationCost(platform.DeviceC(), platform.DeviceD(), []string{"bogus"}); err == nil {
		t.Error("unknown category should fail")
	}
}

func newCmdDriver(t *testing.T) (*CmdDriver, *uck.Module) {
	t.Helper()
	link, err := pcie.NewLink("l", 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	engine, err := pcie.NewEngine(link, pcie.DefaultEngineConfig())
	if err != nil {
		t.Fatal(err)
	}
	kernel, err := uck.NewKernel(64)
	if err != nil {
		t.Fatal(err)
	}
	m := uck.NewModule("mac0", []uck.RegOp{{Kind: uck.OpWrite, Addr: 4, Value: 1}})
	if err := kernel.Register(1, 0, m); err != nil {
		t.Fatal(err)
	}
	d, err := NewCmdDriver(engine, kernel)
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

func TestCmdDriverRoundTrip(t *testing.T) {
	d, m := newCmdDriver(t)
	done, err := d.CmdWrite(0, cmdif.New(1, 0, cmdif.ModuleInit))
	if err != nil {
		t.Fatal(err)
	}
	if m.Status() != uck.StatusReady {
		t.Error("module not initialized")
	}
	if done <= 0 {
		t.Error("command took no time")
	}
	data, _, err := d.CmdRead(done, cmdif.New(1, 0, cmdif.StatusRead))
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1 || data[0] != uck.StatusReady {
		t.Errorf("status read = %v", data)
	}
	if d.Issued() != 2 {
		t.Errorf("Issued = %d", d.Issued())
	}
}

func TestCmdDriverErrors(t *testing.T) {
	if _, err := NewCmdDriver(nil, nil); err == nil {
		t.Error("nil deps should fail")
	}
	d, _ := newCmdDriver(t)
	if _, err := d.CmdWrite(0, cmdif.New(9, 9, cmdif.ModuleInit)); err == nil {
		t.Error("unknown module should fail")
	}
}

func TestCmdDriverFasterThanRegDriverForInit(t *testing.T) {
	// One init command beats sequencing tens of register ops over PCIe
	// — each register op is its own round trip.
	d, _ := newCmdDriver(t)
	cmdDone, err := d.CmdWrite(0, cmdif.New(1, 0, cmdif.ModuleInit))
	if err != nil {
		t.Fatal(err)
	}

	link, _ := pcie.NewLink("l2", 4, 16)
	m := uck.NewModule("mac1", nil)
	rd, err := NewRegDriver(link, m)
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := ModuleInitRegisters(platform.DeviceA(), "mac")
	regDone := rd.Run(0, ops)
	if cmdDone >= regDone {
		t.Errorf("command init %v not faster than register init %v", cmdDone, regDone)
	}
	if rd.Ops() == 0 {
		t.Error("register driver performed no ops")
	}
}

func TestRegDriverWaitPolls(t *testing.T) {
	link, _ := pcie.NewLink("l", 3, 8)
	m := uck.NewModule("m", nil)
	d, _ := NewRegDriver(link, m)
	plain := d.Run(0, []uck.RegOp{{Kind: uck.OpWrite, Addr: 0, Value: 1}})
	d2, _ := NewRegDriver(pcieLink(t), m)
	waited := d2.Run(0, []uck.RegOp{{Kind: uck.OpWait, Addr: 0, Value: 1}})
	if waited <= plain {
		t.Error("wait op should cost more than a single write")
	}
	if _, err := NewRegDriver(nil, nil); err == nil {
		t.Error("nil deps should fail")
	}
}

func pcieLink(t *testing.T) *pcie.Link {
	t.Helper()
	l, err := pcie.NewLink("l", 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestCmdDriverRetriesOnCorruption(t *testing.T) {
	d, m := newCmdDriver(t)
	// Corrupt the first transmission only: the retry succeeds.
	d.SetFaultInjector(func(attempt int, buf []byte) []byte {
		if attempt == 0 {
			buf[6] ^= 0x80
		}
		return buf
	})
	if _, err := d.CmdWrite(0, cmdif.New(1, 0, cmdif.ModuleInit)); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if m.Status() != uck.StatusReady {
		t.Error("module not initialized after retry")
	}
	if d.Retries() != 1 {
		t.Errorf("Retries = %d, want 1", d.Retries())
	}
}

func TestCmdDriverGivesUpAfterMaxRetries(t *testing.T) {
	d, m := newCmdDriver(t)
	d.MaxRetries = 2
	d.SetFaultInjector(func(attempt int, buf []byte) []byte {
		buf[6] ^= 0x80 // persistent corruption
		return buf
	})
	if _, err := d.CmdWrite(0, cmdif.New(1, 0, cmdif.ModuleInit)); err == nil {
		t.Fatal("persistently corrupted command succeeded")
	}
	if m.Status() == uck.StatusReady {
		t.Error("corrupted command executed")
	}
	if d.Retries() != 2 {
		t.Errorf("Retries = %d, want 2", d.Retries())
	}
}

func TestCmdDriverExecutesParsedBytes(t *testing.T) {
	// The kernel must act on what crossed the wire, not the host's
	// in-memory object: rewrite the wire payload to target instance 0's
	// table 9 instead of table 1 and observe the parsed effect.
	d, m := newCmdDriver(t)
	d.SetFaultInjector(func(attempt int, buf []byte) []byte {
		// Data word 0 (the table id) lives after the 3-word header.
		rewritten := cmdif.New(1, 0, cmdif.TableWrite, 9, 0, 0xFE)
		out, err := rewritten.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		return out
	})
	if _, err := d.CmdWrite(0, cmdif.New(1, 0, cmdif.TableWrite, 1, 0, 0xFE)); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Table(1, 0); ok {
		t.Error("host-side object executed instead of wire bytes")
	}
	if entry, ok := m.Table(9, 0); !ok || entry[0] != 0xFE {
		t.Errorf("wire-rewritten table not applied: %v, %v", entry, ok)
	}
}

func TestCmdDriverCountsDrops(t *testing.T) {
	d, _ := newCmdDriver(t)
	d.MaxRetries = 1
	d.SetFaultInjector(func(attempt int, buf []byte) []byte {
		buf[6] ^= 0x80 // persistent corruption
		return buf
	})
	if _, err := d.CmdWrite(0, cmdif.New(1, 0, cmdif.ModuleInit)); err == nil {
		t.Fatal("persistently corrupted command succeeded")
	}
	if d.Drops() != 1 {
		t.Errorf("Drops = %d, want 1", d.Drops())
	}
	// A recoverable corruption retries without dropping.
	d.SetFaultInjector(func(attempt int, buf []byte) []byte {
		if attempt == 0 {
			buf[6] ^= 0x80
		}
		return buf
	})
	if _, err := d.CmdWrite(0, cmdif.New(1, 0, cmdif.ModuleInit)); err != nil {
		t.Fatal(err)
	}
	if d.Drops() != 1 {
		t.Errorf("Drops = %d after recovered retry, want still 1", d.Drops())
	}
}
