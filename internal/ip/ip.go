// Package ip provides the vendor-specific IP catalog: structural models
// (interfaces, configurations, resources, code volume, deployment
// dependencies) and performance specifications for the hardware blocks
// shells are assembled from — Ethernet MACs, PCIe DMA engines, DDR/HBM
// memory controllers, PCIe hard IP and TLP engines.
//
// Xilinx IPs expose AXI ports, Intel IPs expose Avalon ports, and the
// two vendors disagree on configuration inventories — exactly the
// per-module property disparities Fig. 3b quantifies. In-house devices
// reuse the Xilinx-style interface conventions of their chips.
package ip

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/platform"
	"harmonia/internal/proto"
)

// Speed is a network line rate in Gbps.
type Speed int

// Supported MAC line rates.
const (
	Speed25G  Speed = 25
	Speed100G Speed = 100
	Speed400G Speed = 400
)

// MACSpec is the performance model of a MAC instance: line rate, core
// datapath width and clock. Data widths scale 128/512/2048 bits with
// 25/100/400G as in §3.3.1.
type MACSpec struct {
	Speed     Speed
	DataWidth int
	CoreMHz   float64
}

// SpecForMAC returns the datapath spec for a line rate.
func SpecForMAC(s Speed) (MACSpec, error) {
	switch s {
	case Speed25G:
		return MACSpec{Speed: s, DataWidth: 128, CoreMHz: 250}, nil
	case Speed100G:
		return MACSpec{Speed: s, DataWidth: 512, CoreMHz: 322.265625}, nil
	case Speed400G:
		return MACSpec{Speed: s, DataWidth: 2048, CoreMHz: 322.265625}, nil
	default:
		return MACSpec{}, fmt.Errorf("ip: unsupported MAC speed %dG", s)
	}
}

// DMAVariant distinguishes bulk-transfer from scatter-gather DMA engines
// (the module-level tailoring choice in §3.3.2).
type DMAVariant string

// DMA engine variants.
const (
	BDMA  DMAVariant = "bdma"  // bulk DMA: high-bandwidth contiguous moves
	SGDMA DMAVariant = "sgdma" // scatter-gather DMA: discrete descriptors
)

// DMASpec is the performance model of a PCIe DMA engine.
type DMASpec struct {
	Gen       int
	Lanes     int
	DataWidth int
	CoreMHz   float64
	// QueueCount is the number of hardware DMA queues the engine
	// exposes (the paper's Host RBB provides 1K).
	QueueCount int
}

// SpecForDMA returns the datapath spec for a PCIe generation and lane
// count. Width and clock double with each generation upgrade (§3.3.1).
func SpecForDMA(gen, lanes int) (DMASpec, error) {
	base := DMASpec{Gen: gen, Lanes: lanes, QueueCount: 1024}
	switch gen {
	case 3:
		base.DataWidth, base.CoreMHz = 256, 250
	case 4:
		base.DataWidth, base.CoreMHz = 512, 250
	case 5:
		base.DataWidth, base.CoreMHz = 512, 500
	default:
		return DMASpec{}, fmt.Errorf("ip: unsupported PCIe generation %d", gen)
	}
	if lanes == 8 {
		// Half-width links run the same core at half datapath width.
		base.DataWidth /= 2
	} else if lanes != 16 {
		return DMASpec{}, fmt.Errorf("ip: unsupported lane count x%d", lanes)
	}
	return base, nil
}

// MemKind distinguishes memory controller targets.
type MemKind string

// Memory controller kinds.
const (
	DDR4Mem MemKind = "ddr4"
	HBMMem  MemKind = "hbm"
)

// MemSpec is the performance model of a memory controller.
type MemSpec struct {
	Kind MemKind
	// Channels the controller manages (2 for DDR boards, 32 for HBM).
	Channels int
	// DataWidth of the user-facing port in bits (512 per §3.3.1).
	DataWidth int
	CoreMHz   float64
	// PeakGbps is the aggregate theoretical bandwidth.
	PeakGbps float64
}

// SpecForMem returns the controller spec for a memory kind.
func SpecForMem(kind MemKind) (MemSpec, error) {
	switch kind {
	case DDR4Mem:
		return MemSpec{Kind: kind, Channels: 2, DataWidth: 512, CoreMHz: 300, PeakGbps: 2 * 153.6}, nil
	case HBMMem:
		return MemSpec{Kind: kind, Channels: 32, DataWidth: 512, CoreMHz: 450, PeakGbps: 3680}, nil
	default:
		return MemSpec{}, fmt.Errorf("ip: unsupported memory kind %q", kind)
	}
}

// interfaceStyle returns the protocol families a vendor's IPs use.
func interfaceStyle(v platform.Vendor) (stream, mm, reg proto.Family) {
	if v == platform.Intel {
		return proto.AvalonST, proto.AvalonMM, proto.AvalonMM
	}
	// Xilinx and in-house devices use the AXI convention.
	return proto.AXI4Stream, proto.AXI4, proto.AXI4Lite
}

// params builds a parameter list from names, marking the first
// roleVisible entries role-oriented. Vendor IPs expose most parameters
// for completeness while roles need only a handful (§3.3.2, Fig. 12).
func params(names []string, roleVisible int) []hdl.Param {
	out := make([]hdl.Param, len(names))
	for i, n := range names {
		scope := hdl.ShellOriented
		if i < roleVisible {
			scope = hdl.RoleOriented
		}
		out[i] = hdl.Param{Name: n, Default: "auto", Scope: scope}
	}
	return out
}

// numbered appends n generated names "prefix_0..n-1" to base — the long
// tail of lane/channel/timing options vendor IP wizards expose.
func numbered(base []string, prefix string, n int) []string {
	out := append([]string(nil), base...)
	for i := 0; i < n; i++ {
		out = append(out, fmt.Sprintf("%s_%d", prefix, i))
	}
	return out
}

func vendorDeps(v platform.Vendor, extra map[string]string) map[string]string {
	deps := map[string]string{}
	switch v {
	case platform.Intel:
		deps["cad"] = "quartus"
		deps["cad_version"] = "23.4"
		deps["ip_catalog"] = "intel-fpga-ip"
	default:
		deps["cad"] = "vivado"
		deps["cad_version"] = "2023.2"
		deps["ip_catalog"] = "xilinx-ip"
	}
	for k, val := range extra {
		deps[k] = val
	}
	return deps
}
