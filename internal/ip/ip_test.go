package ip

import (
	"testing"

	"harmonia/internal/hdl"
	"harmonia/internal/platform"
)

func TestSpecForMACWidthScaling(t *testing.T) {
	// §3.3.1: data width scales 128/512/2048 with 25/100/400G.
	tests := []struct {
		speed Speed
		width int
	}{
		{Speed25G, 128},
		{Speed100G, 512},
		{Speed400G, 2048},
	}
	for _, tt := range tests {
		spec, err := SpecForMAC(tt.speed)
		if err != nil {
			t.Fatalf("SpecForMAC(%d): %v", tt.speed, err)
		}
		if spec.DataWidth != tt.width {
			t.Errorf("%dG width = %d, want %d", tt.speed, spec.DataWidth, tt.width)
		}
		// The core datapath must sustain the line rate.
		coreGbps := float64(spec.DataWidth) * spec.CoreMHz / 1000
		if coreGbps < float64(tt.speed) {
			t.Errorf("%dG core rate %.1f Gbps below line rate", tt.speed, coreGbps)
		}
	}
	if _, err := SpecForMAC(Speed(10)); err == nil {
		t.Error("SpecForMAC(10) should fail")
	}
}

func TestSpecForDMA(t *testing.T) {
	g3, err := SpecForDMA(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	g4, _ := SpecForDMA(4, 16)
	g5, _ := SpecForDMA(5, 16)
	// Width×clock doubles per generation.
	r43 := float64(g4.DataWidth) * g4.CoreMHz / (float64(g3.DataWidth) * g3.CoreMHz)
	r54 := float64(g5.DataWidth) * g5.CoreMHz / (float64(g4.DataWidth) * g4.CoreMHz)
	if r43 != 2 || r54 != 2 {
		t.Errorf("generation scaling = %v, %v, want 2, 2", r43, r54)
	}
	// x8 halves the datapath.
	g4x8, _ := SpecForDMA(4, 8)
	if g4x8.DataWidth*2 != g4.DataWidth {
		t.Errorf("x8 width = %d, want half of %d", g4x8.DataWidth, g4.DataWidth)
	}
	if g3.QueueCount != 1024 {
		t.Errorf("QueueCount = %d, want 1024", g3.QueueCount)
	}
	if _, err := SpecForDMA(6, 16); err == nil {
		t.Error("SpecForDMA(6) should fail")
	}
	if _, err := SpecForDMA(4, 4); err == nil {
		t.Error("SpecForDMA(x4) should fail")
	}
}

func TestSpecForMem(t *testing.T) {
	ddr, err := SpecForMem(DDR4Mem)
	if err != nil {
		t.Fatal(err)
	}
	hbm, err := SpecForMem(HBMMem)
	if err != nil {
		t.Fatal(err)
	}
	if ddr.Channels != 2 || hbm.Channels != 32 {
		t.Errorf("channels = %d/%d, want 2/32", ddr.Channels, hbm.Channels)
	}
	if hbm.PeakGbps/ddr.PeakGbps < 10 {
		t.Error("HBM should be an order of magnitude faster than the DDR board")
	}
	if _, err := SpecForMem("flash"); err == nil {
		t.Error("SpecForMem(flash) should fail")
	}
}

func TestMACModuleVendorStyles(t *testing.T) {
	x, err := MACModule(platform.Xilinx, Speed100G)
	if err != nil {
		t.Fatal(err)
	}
	i, err := MACModule(platform.Intel, Speed100G)
	if err != nil {
		t.Fatal(err)
	}
	// Same functionality, disjoint interface conventions: the diff
	// should be tens of signals (Fig. 3b shape).
	d := hdl.InterfaceDiff(x, i)
	if d < 20 {
		t.Errorf("cross-vendor MAC interface diff = %d, want tens", d)
	}
	// Config inventories differ too.
	cd := hdl.ConfigDiff(x, i)
	if cd < 30 {
		t.Errorf("cross-vendor MAC config diff = %d, want tens", cd)
	}
	// Same vendor, same speed: no differences.
	x2, _ := MACModule(platform.Xilinx, Speed100G)
	if hdl.InterfaceDiff(x, x2) != 0 || hdl.ConfigDiff(x, x2) != 0 {
		t.Error("identical modules must not differ")
	}
}

func TestInHouseUsesAXIConvention(t *testing.T) {
	ih, err := MACModule(platform.InHouse, Speed100G)
	if err != nil {
		t.Fatal(err)
	}
	x, _ := MACModule(platform.Xilinx, Speed100G)
	if d := hdl.InterfaceDiff(ih, x); d != 0 {
		t.Errorf("in-house vs xilinx interface diff = %d, want 0 (same convention)", d)
	}
}

func TestDMAModuleVariants(t *testing.T) {
	sg, err := DMAModule(platform.Xilinx, 4, 16, SGDMA)
	if err != nil {
		t.Fatal(err)
	}
	bd, err := DMAModule(platform.Xilinx, 4, 16, BDMA)
	if err != nil {
		t.Fatal(err)
	}
	if bd.Res.LUT >= sg.Res.LUT {
		t.Error("BDMA should be smaller than SGDMA")
	}
	if _, err := DMAModule(platform.Xilinx, 4, 16, "cdma"); err == nil {
		t.Error("unknown variant should fail")
	}
}

func TestMemModule(t *testing.T) {
	if _, err := MemModule(platform.Intel, HBMMem); err == nil {
		t.Error("Intel HBM controller should be absent from catalog")
	}
	ddr, err := MemModule(platform.Intel, DDR4Mem)
	if err != nil {
		t.Fatal(err)
	}
	if ddr.Category != "ddr4" {
		t.Errorf("category = %q", ddr.Category)
	}
	hbm, err := MemModule(platform.Xilinx, HBMMem)
	if err != nil {
		t.Fatal(err)
	}
	if hbm.Res.LUT <= ddr.Res.LUT {
		t.Error("HBM controller should be larger than DDR controller")
	}
}

func TestModuleParamBudget(t *testing.T) {
	// Native vendor modules expose tens-to-hundreds of configs while
	// only a handful are role-oriented — the Fig. 12 ratio source.
	mods := []func() (*hdl.Module, error){
		func() (*hdl.Module, error) { return MACModule(platform.Xilinx, Speed100G) },
		func() (*hdl.Module, error) { return DMAModule(platform.Intel, 4, 16, SGDMA) },
		func() (*hdl.Module, error) { return MemModule(platform.Xilinx, DDR4Mem) },
	}
	for _, mk := range mods {
		m, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		total := m.ParamCount()
		role := len(m.RoleParams())
		if total < 40 {
			t.Errorf("%s exposes %d params, want >= 40", m.Name, total)
		}
		if role == 0 || role > total/8 {
			t.Errorf("%s role params = %d of %d, want small non-zero subset", m.Name, role, total)
		}
	}
}

func TestVendorDeps(t *testing.T) {
	x, _ := MACModule(platform.Xilinx, Speed100G)
	i, _ := MACModule(platform.Intel, Speed100G)
	if x.Deps["cad"] != "vivado" || i.Deps["cad"] != "quartus" {
		t.Errorf("cad deps = %q/%q", x.Deps["cad"], i.Deps["cad"])
	}
	d, _ := DMAModule(platform.Intel, 5, 16, SGDMA)
	if d.Deps["pcie_hard_ip"] != "gen5" {
		t.Errorf("pcie_hard_ip = %q", d.Deps["pcie_hard_ip"])
	}
}

func TestCatalog(t *testing.T) {
	for _, v := range []platform.Vendor{platform.Xilinx, platform.Intel, platform.InHouse} {
		lib, err := Catalog(v)
		if err != nil {
			t.Fatalf("Catalog(%s): %v", v, err)
		}
		// 3 MACs + 3 gens × 2 lanes × (2 DMA variants + 1 PHY) + memories + TLP.
		wantMin := 3 + 18 + 2
		if v == platform.Intel {
			wantMin--
		}
		if lib.Len() < wantMin {
			t.Errorf("Catalog(%s) has %d modules, want >= %d", v, lib.Len(), wantMin)
		}
		if len(lib.ByCategory("mac")) != 3 {
			t.Errorf("Catalog(%s) MACs = %d, want 3", v, len(lib.ByCategory("mac")))
		}
		for _, name := range lib.Names() {
			m, err := lib.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			if m.Res.IsZero() {
				t.Errorf("%s has zero resources", name)
			}
			if m.Code.Total() == 0 {
				t.Errorf("%s has zero code volume", name)
			}
		}
	}
}

func TestTLPModule(t *testing.T) {
	x, err := TLPModule(platform.Xilinx)
	if err != nil {
		t.Fatal(err)
	}
	i, err := TLPModule(platform.Intel)
	if err != nil {
		t.Fatal(err)
	}
	if hdl.InterfaceDiff(x, i) == 0 {
		t.Error("cross-vendor TLP engines should differ")
	}
}

func TestPCIePhyModule(t *testing.T) {
	if _, err := PCIePhyModule(platform.Xilinx, 7, 16); err == nil {
		t.Error("bad generation should fail")
	}
	m, err := PCIePhyModule(platform.Intel, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if m.Category != "pcie-phy" {
		t.Errorf("category = %q", m.Category)
	}
}
