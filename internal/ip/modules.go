package ip

import (
	"fmt"

	"harmonia/internal/hdl"
	"harmonia/internal/platform"
	"harmonia/internal/proto"
)

// MACModule returns the vendor MAC IP for a line rate: the "specific
// instance" of the Network RBB. Names mirror the real parts (Xilinx
// CMAC / Intel E-tile).
func MACModule(v platform.Vendor, s Speed) (*hdl.Module, error) {
	spec, err := SpecForMAC(s)
	if err != nil {
		return nil, err
	}
	stream, _, reg := interfaceStyle(v)
	rx, err := proto.ForFamily(stream, "rx", spec.DataWidth, 0)
	if err != nil {
		return nil, err
	}
	tx, err := proto.ForFamily(stream, "tx", spec.DataWidth, 0)
	if err != nil {
		return nil, err
	}
	var ctrl proto.Interface
	if reg == proto.AvalonMM {
		ctrl = proto.NewAvalonMM("csr", 32, 21)
		ctrl.Kind = proto.KindReg // Avalon-MM used as a register port
	} else {
		ctrl = proto.NewAXI4Lite("csr", 32, 21)
	}

	name := fmt.Sprintf("%s-mac-%dg", v, s)
	common := []string{
		"LINE_RATE", "FEC_MODE", "RX_FLOW_CONTROL", "TX_FLOW_CONTROL",
		"PTP_ENABLE", "AUTONEG", "MIN_FRAME", "MAX_FRAME", "RSFEC_LANES",
		"GT_REF_CLK", "PAUSE_QUANTA", "IPG",
	}
	var paramNames []string
	roleVisible := 3 // LINE_RATE, FEC_MODE, RX_FLOW_CONTROL matter to roles
	if v == platform.Intel {
		paramNames = numbered(append(common, "EHIP_MODE", "PMA_ADAPT"), "etile_lane_opt", 44)
	} else {
		paramNames = numbered(append(common, "CMAC_CORE_MODE"), "gt_lane_opt", 33)
	}

	res := hdl.Resources{LUT: 14_000, REG: 28_000, BRAM: 36}
	if s == Speed400G {
		res = res.Scale(2.2)
	} else if s == Speed25G {
		res = res.Scale(0.4)
	}
	return &hdl.Module{
		Name:     name,
		Vendor:   string(v),
		Category: "mac",
		Ports:    []proto.Interface{rx, tx, ctrl},
		Params:   params(paramNames, roleVisible),
		Res:      res,
		Code:     hdl.LoC{Handcraft: 600, Generated: 9_500},
		Deps: vendorDeps(v, map[string]string{
			"transceiver": transceiverFor(v, s),
		}),
		FmaxMHz: 402,
	}, nil
}

func transceiverFor(v platform.Vendor, s Speed) string {
	if v == platform.Intel {
		if s == Speed400G {
			return "f-tile"
		}
		return "e-tile"
	}
	if s == Speed400G {
		return "gty-dcmac"
	}
	return "gty"
}

// DMAModule returns the vendor PCIe DMA engine (Xilinx QDMA-style /
// Intel MCDMA-style) for a PCIe generation, lane count and variant.
func DMAModule(v platform.Vendor, gen, lanes int, variant DMAVariant) (*hdl.Module, error) {
	spec, err := SpecForDMA(gen, lanes)
	if err != nil {
		return nil, err
	}
	if variant != BDMA && variant != SGDMA {
		return nil, fmt.Errorf("ip: unknown DMA variant %q", variant)
	}
	stream, mm, reg := interfaceStyle(v)
	h2c, err := proto.ForFamily(stream, "h2c", spec.DataWidth, 0)
	if err != nil {
		return nil, err
	}
	c2h, err := proto.ForFamily(stream, "c2h", spec.DataWidth, 0)
	if err != nil {
		return nil, err
	}
	bypass, err := proto.ForFamily(mm, "dma_bypass", spec.DataWidth, 64)
	if err != nil {
		return nil, err
	}
	var ctrl proto.Interface
	if reg == proto.AvalonMM {
		ctrl = proto.NewAvalonMM("csr", 32, 28)
		ctrl.Kind = proto.KindReg
	} else {
		ctrl = proto.NewAXI4Lite("csr", 32, 28)
	}

	common := []string{
		"PCIE_GEN", "LANES", "QUEUE_COUNT", "MAX_PAYLOAD", "MAX_READ_REQ",
		"SRIOV_VFS", "MSIX_VECTORS", "DESC_RING_SIZE", "COMPLETION_COALESCE",
		"BAR0_SIZE", "BAR2_SIZE", "DOORBELL_MODE",
	}
	roleVisible := 4 // generation, lanes, queues, payload
	var paramNames []string
	if v == platform.Intel {
		paramNames = numbered(append(common, "MCDMA_MODE", "AVST_SEG"), "ptile_opt", 62)
	} else {
		paramNames = numbered(append(common, "QDMA_MODE"), "pcie4c_opt", 57)
	}

	res := hdl.Resources{LUT: 68_000, REG: 115_000, BRAM: 170, URAM: 16}
	if variant == BDMA {
		res = res.Scale(0.7) // bulk engines omit descriptor scatter logic
	}
	if gen >= 5 {
		res = res.Scale(1.3)
	}
	return &hdl.Module{
		Name:     fmt.Sprintf("%s-%s-gen%dx%d", v, variant, gen, lanes),
		Vendor:   string(v),
		Category: "pcie-dma",
		Ports:    []proto.Interface{h2c, c2h, bypass, ctrl},
		Params:   params(paramNames, roleVisible),
		Res:      res,
		Code:     hdl.LoC{Handcraft: 1_200, Generated: 22_000},
		Deps: vendorDeps(v, map[string]string{
			"pcie_hard_ip": fmt.Sprintf("gen%d", gen),
		}),
		FmaxMHz: 510,
	}, nil
}

// MemModule returns the vendor memory controller (Xilinx MIG/HBM IP or
// Intel EMIF) for a memory kind.
func MemModule(v platform.Vendor, kind MemKind) (*hdl.Module, error) {
	spec, err := SpecForMem(kind)
	if err != nil {
		return nil, err
	}
	if kind == HBMMem && v == platform.Intel {
		return nil, fmt.Errorf("ip: no Intel HBM controller in catalog")
	}
	_, mm, reg := interfaceStyle(v)
	data, err := proto.ForFamily(mm, "mem", spec.DataWidth, 34)
	if err != nil {
		return nil, err
	}
	var ctrl proto.Interface
	if reg == proto.AvalonMM {
		ctrl = proto.NewAvalonMM("csr", 32, 16)
		ctrl.Kind = proto.KindReg
	} else {
		ctrl = proto.NewAXI4Lite("csr", 32, 16)
	}

	timing := []string{
		"SPEED_BIN", "CAS_LATENCY", "tRCD", "tRP", "tRAS", "tRC", "tFAW",
		"tWTR", "tRRD", "REFRESH_INTERVAL", "ECC_ENABLE", "ADDR_ORDERING",
	}
	roleVisible := 2 // capacity/ordering matter to roles
	var paramNames []string
	if v == platform.Intel {
		paramNames = numbered(append(timing, "EMIF_TOPOLOGY", "OCT_MODE"), "emif_pin_opt", 90)
	} else if kind == HBMMem {
		paramNames = numbered(append(timing, "STACK_COUNT", "SWITCH_ENABLE"), "hbm_ch_opt", 64)
	} else {
		paramNames = numbered(append(timing, "MIG_CLAMSHELL"), "mig_pin_opt", 74)
	}

	res := hdl.Resources{LUT: 24_000, REG: 31_000, BRAM: 25}
	if kind == HBMMem {
		res = hdl.Resources{LUT: 36_000, REG: 52_000, BRAM: 64}
	}
	return &hdl.Module{
		Name:     fmt.Sprintf("%s-%s-ctrl", v, kind),
		Vendor:   string(v),
		Category: string(kind),
		Ports:    []proto.Interface{data, ctrl},
		Params:   params(paramNames, roleVisible),
		Res:      res,
		Code:     hdl.LoC{Handcraft: 900, Generated: 18_000},
		Deps: vendorDeps(v, map[string]string{
			"memory_phy": string(kind),
		}),
		FmaxMHz: 466,
	}, nil
}

// PCIePhyModule returns the vendor PCIe hard-IP wrapper (PHY + link
// layer below the DMA engine).
func PCIePhyModule(v platform.Vendor, gen, lanes int) (*hdl.Module, error) {
	if _, err := SpecForDMA(gen, lanes); err != nil {
		return nil, err
	}
	stream, _, reg := interfaceStyle(v)
	rq, err := proto.ForFamily(stream, "rq", 512, 0)
	if err != nil {
		return nil, err
	}
	cc, err := proto.ForFamily(stream, "cc", 512, 0)
	if err != nil {
		return nil, err
	}
	var ctrl proto.Interface
	if reg == proto.AvalonMM {
		ctrl = proto.NewAvalonMM("cfg", 32, 12)
		ctrl.Kind = proto.KindReg
	} else {
		ctrl = proto.NewAXI4Lite("cfg", 32, 12)
	}
	base := []string{"GEN", "LANES", "VENDOR_ID", "DEVICE_ID", "CLASS_CODE",
		"ASPM", "EXT_TAG", "TPH", "ATS"}
	var names []string
	if v == platform.Intel {
		names = numbered(append(base, "PTILE_MODE"), "ptile_phy_opt", 47)
	} else {
		names = numbered(base, "pcie_phy_opt", 42)
	}
	return &hdl.Module{
		Name:     fmt.Sprintf("%s-pcie-phy-gen%dx%d", v, gen, lanes),
		Vendor:   string(v),
		Category: "pcie-phy",
		Ports:    []proto.Interface{rq, cc, ctrl},
		Params:   params(names, 2),
		Res:      hdl.Resources{LUT: 9_000, REG: 14_000, BRAM: 8},
		Code:     hdl.LoC{Handcraft: 400, Generated: 12_000},
		Deps: vendorDeps(v, map[string]string{
			"pcie_hard_ip": fmt.Sprintf("gen%d", gen),
		}),
		FmaxMHz: 625,
	}, nil
}

// TLPModule returns the vendor transaction-layer packet engine used by
// bump-in-the-wire designs that bypass the full DMA.
func TLPModule(v platform.Vendor) (*hdl.Module, error) {
	stream, _, _ := interfaceStyle(v)
	in, err := proto.ForFamily(stream, "tlp_in", 256, 0)
	if err != nil {
		return nil, err
	}
	out, err := proto.ForFamily(stream, "tlp_out", 256, 0)
	if err != nil {
		return nil, err
	}
	base := []string{"TLP_MAX_SIZE", "CREDITS", "ORDERING", "RELAXED_ORDER"}
	var names []string
	if v == platform.Intel {
		names = numbered(base, "tlp_avst_opt", 31)
	} else {
		names = numbered(base, "tlp_axis_opt", 26)
	}
	return &hdl.Module{
		Name:     fmt.Sprintf("%s-tlp", v),
		Vendor:   string(v),
		Category: "tlp",
		Ports:    []proto.Interface{in, out},
		Params:   params(names, 1),
		Res:      hdl.Resources{LUT: 11_000, REG: 17_000, BRAM: 10},
		Code:     hdl.LoC{Handcraft: 700, Generated: 6_500},
		Deps:     vendorDeps(v, nil),
	}, nil
}

// Catalog builds the full module library for a vendor: MACs at every
// speed, DMA engines for every supported generation/lane/variant
// combination, memory controllers, PCIe PHYs and the TLP engine.
func Catalog(v platform.Vendor) (*hdl.Library, error) {
	lib := hdl.NewLibrary()
	add := func(m *hdl.Module, err error) error {
		if err != nil {
			return err
		}
		return lib.Register(m)
	}
	for _, s := range []Speed{Speed25G, Speed100G, Speed400G} {
		if err := add(MACModule(v, s)); err != nil {
			return nil, err
		}
	}
	for _, gen := range []int{3, 4, 5} {
		for _, lanes := range []int{8, 16} {
			for _, variant := range []DMAVariant{BDMA, SGDMA} {
				if err := add(DMAModule(v, gen, lanes, variant)); err != nil {
					return nil, err
				}
			}
			if err := add(PCIePhyModule(v, gen, lanes)); err != nil {
				return nil, err
			}
		}
	}
	if err := add(MemModule(v, DDR4Mem)); err != nil {
		return nil, err
	}
	if v != platform.Intel {
		if err := add(MemModule(v, HBMMem)); err != nil {
			return nil, err
		}
	}
	if err := add(TLPModule(v)); err != nil {
		return nil, err
	}
	return lib, nil
}
