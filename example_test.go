package harmonia_test

// Runnable godoc examples for the public API.

import (
	"fmt"

	"harmonia"
)

// Deploying a role walks the full §4 lifecycle: adapters, unified
// shell, hierarchical tailoring, dependency inspection and compilation.
func ExampleFramework_Deploy() {
	fw := harmonia.New()
	role, err := harmonia.NewRole("example-app",
		harmonia.Demands{
			Network: &harmonia.NetworkDemand{Gbps: 100},
			Host:    &harmonia.HostDemand{Queues: 8},
		},
		&harmonia.LogicModule{
			Name: "example-logic",
			Res:  harmonia.Resources{LUT: 10_000, REG: 15_000},
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	dep, err := fw.Deploy("device-a", role)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("tailored:", dep.Shell().Tailored)
	fmt.Println("components:", dep.Shell().ComponentNames())
	// Output:
	// tailored: true
	// components: [host-pcie management network uck]
}

// The command-based interface replaces register choreography: one
// module-init command brings a module up on any platform.
func ExampleDevice_Init() {
	fw := harmonia.New()
	role, _ := harmonia.NewRole("example-app",
		harmonia.Demands{Host: &harmonia.HostDemand{Queues: 4}},
		&harmonia.LogicModule{Name: "logic", Res: harmonia.Resources{LUT: 1000}})
	dep, err := fw.Deploy("device-d", role) // an Intel device
	if err != nil {
		fmt.Println(err)
		return
	}
	dev := dep.Device()
	if err := dev.Init(harmonia.RBBHost, 0); err != nil {
		fmt.Println(err)
		return
	}
	ready, _ := dev.Ready(harmonia.RBBHost, 0)
	fmt.Println("host RBB ready:", ready)
	// Output:
	// host RBB ready: true
}

// Tables program through commands too — the same calls on every device.
func ExampleDevice_WriteTable() {
	fw := harmonia.New()
	role, _ := harmonia.NewRole("example-app",
		harmonia.Demands{Network: &harmonia.NetworkDemand{Gbps: 25}},
		&harmonia.LogicModule{Name: "logic", Res: harmonia.Resources{LUT: 1000}})
	dep, err := fw.Deploy("device-b", role) // the in-house card
	if err != nil {
		fmt.Println(err)
		return
	}
	dev := dep.Device()
	if err := dev.WriteTable(harmonia.RBBNetwork, 0, 2, 10, 0xAB, 0xCD); err != nil {
		fmt.Println(err)
		return
	}
	entry, _ := dev.ReadTable(harmonia.RBBNetwork, 0, 2, 10)
	fmt.Printf("%#x\n", entry)
	// Output:
	// [0xab 0xcd]
}
