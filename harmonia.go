// Package harmonia is a software twin of the Harmonia framework from
// "Harmonia: A Unified Framework for Heterogeneous FPGA Acceleration in
// the Cloud" (ASPLOS 2025): a unified shell-role platform for
// heterogeneous FPGAs with automated platform adapters, lightweight
// interface wrappers, Reusable Building Blocks, hierarchical shell
// tailoring, and a command-based host interface.
//
// The package exposes the full application lifecycle of §4:
//
//	fw := harmonia.New()                        // devices A-D preloaded
//	role, _ := harmonia.NewRole("my-app", demands, logic)
//	dep, _ := fw.Deploy("device-a", role)       // adapters, tailoring,
//	                                            // inspection, compile
//	dev := dep.Device()                         // the running instance
//	dev.Init(harmonia.RBBNetwork, 0)            // command interface
//	stats, _ := dev.Stats(harmonia.RBBNetwork, 0)
//
// Everything hardware-shaped (FPGAs, vendor IPs, PCIe, memory) is
// simulated; see DESIGN.md for the substitution map.
package harmonia

import (
	"fmt"
	"sort"

	"harmonia/internal/hdl"
	"harmonia/internal/platform"
	"harmonia/internal/role"
	"harmonia/internal/shell"
	"harmonia/internal/toolchain"
)

// Re-exported shell demand types: these are the role-facing
// configuration surface.
type (
	// Demands declares a role's shell requirements.
	Demands = shell.Demands
	// NetworkDemand requests networking at a line rate.
	NetworkDemand = shell.NetworkDemand
	// MemoryDemand requests a memory kind.
	MemoryDemand = shell.MemoryDemand
	// HostDemand requests host DMA connectivity.
	HostDemand = shell.HostDemand
	// Resources is an FPGA resource footprint.
	Resources = hdl.Resources
	// LogicModule describes role logic structurally.
	LogicModule = hdl.Module
	// Role is a deployable application role.
	Role = role.Role
)

// NewRole creates a role from demands and structural logic.
func NewRole(name string, demands Demands, logic *LogicModule) (*Role, error) {
	return role.New(name, demands, logic)
}

// Framework is the top-level entry point: a device inventory plus the
// deployment pipeline.
type Framework struct {
	devices map[string]*platform.Device
}

// New returns a framework preloaded with the paper's evaluation devices
// (device-a .. device-d).
func New() *Framework {
	return &Framework{devices: platform.Catalog()}
}

// RegisterDevice adds a custom device (the in-house case of §2.2).
func (f *Framework) RegisterDevice(d *platform.Device) error {
	if d == nil || d.Name == "" {
		return fmt.Errorf("harmonia: invalid device")
	}
	if _, dup := f.devices[d.Name]; dup {
		return fmt.Errorf("harmonia: device %q already registered", d.Name)
	}
	f.devices[d.Name] = d
	return nil
}

// Devices lists registered device names, sorted.
func (f *Framework) Devices() []string {
	names := make([]string, 0, len(f.devices))
	for n := range f.devices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Device returns a registered device.
func (f *Framework) Device(name string) (*platform.Device, error) {
	d, ok := f.devices[name]
	if !ok {
		return nil, fmt.Errorf("harmonia: unknown device %q", name)
	}
	return d, nil
}

// Deployment is a role integrated and booted on one device.
type Deployment struct {
	project *toolchain.Project
	device  *Device
}

// Deploy runs the full integration flow for the role on the named
// device (adapters, unified shell, tailoring, dependency inspection,
// compilation, packaging) and boots a simulated device instance.
func (f *Framework) Deploy(deviceName string, r *Role) (*Deployment, error) {
	dev, err := f.Device(deviceName)
	if err != nil {
		return nil, err
	}
	proj, err := toolchain.Integrate(dev, r)
	if err != nil {
		return nil, err
	}
	inst, err := bootDevice(proj)
	if err != nil {
		return nil, err
	}
	return &Deployment{project: proj, device: inst}, nil
}

// Project returns the consolidated build artifact.
func (d *Deployment) Project() *toolchain.Project { return d.project }

// Device returns the running simulated instance.
func (d *Deployment) Device() *Device { return d.device }

// Shell returns the tailored shell backing this deployment.
func (d *Deployment) Shell() *shell.Shell { return d.project.Shell }

// Bitstream returns the build identity.
func (d *Deployment) Bitstream() string { return d.project.Bitstream.Checksum }
