package harmonia

// Integration tests: end-to-end scenarios crossing every layer —
// role definition, toolchain integration, simulated boot, functional
// traffic through the RBBs, and monitoring through the command-based
// interface.

import (
	"testing"

	"harmonia/internal/apps"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

// compatibleDevices lists which catalog devices can host each app's
// demands (device-c has no external memory; only device-a has HBM).
func compatibleDevices(t *testing.T, appName string) []string {
	t.Helper()
	switch appName {
	case "sec-gateway", "host-network":
		return []string{"device-a", "device-b", "device-d"} // need DDR
	case "layer4-lb", "retrieval", "board-test":
		return []string{"device-a"} // need HBM
	default:
		t.Fatalf("unknown app %s", appName)
		return nil
	}
}

func TestEveryAppDeploysOnEveryCompatibleDevice(t *testing.T) {
	fw := New()
	for _, name := range apps.Names() {
		info, err := apps.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, devName := range compatibleDevices(t, name) {
			r, err := info.Role()
			if err != nil {
				t.Fatal(err)
			}
			dep, err := fw.Deploy(devName, r)
			if err != nil {
				t.Errorf("%s on %s: %v", name, devName, err)
				continue
			}
			if err := dep.Device().InitAll(); err != nil {
				t.Errorf("%s on %s init: %v", name, devName, err)
			}
		}
	}
}

func TestEndToEndGatewayWithCommandMonitoring(t *testing.T) {
	// Deploy the gateway, drive the functional datapath, and read the
	// RBB's real counters back through the command interface.
	fw := New()
	info, _ := apps.Lookup("sec-gateway")
	r, err := info.Role()
	if err != nil {
		t.Fatal(err)
	}
	dep, err := fw.Deploy("device-a", r)
	if err != nil {
		t.Fatal(err)
	}
	dev := dep.Device()
	if err := dev.InitAll(); err != nil {
		t.Fatal(err)
	}

	gw, err := apps.NewSecGateway(platform.Xilinx, true)
	if err != nil {
		t.Fatal(err)
	}
	gw.DeployPolicy(apps.Policy{SrcPrefix: net.IPv4(192, 168, 0, 0), PrefixLen: 16, Action: apps.Deny})

	// Wire the functional RBB counters into the device's monitoring.
	if err := dev.SetStatsSource(RBBNetwork, 0, func() []uint32 {
		rx := gw.Net.RxStats()
		return []uint32{uint32(rx.Units), uint32(rx.Drops), uint32(gw.Denied())}
	}); err != nil {
		t.Fatal(err)
	}

	pkts, err := workload.Packets(workload.PacketConfig{Count: 1000, Size: 512, Flows: 32, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	denied := 0
	for i, p := range pkts {
		if i%5 == 0 {
			p.SrcIP = net.IPv4(192, 168, 1, byte(i))
		}
		if ok, _ := gw.Process(0, p); !ok {
			denied++
		}
	}
	if denied != 200 {
		t.Fatalf("denied %d, want 200", denied)
	}

	stats, err := dev.Stats(RBBNetwork, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0] != 1000 {
		t.Errorf("rx units via commands = %d, want 1000", stats[0])
	}
	if stats[2] != 200 {
		t.Errorf("denied via commands = %d, want 200", stats[2])
	}
}

func TestEndToEndMigrationCToD(t *testing.T) {
	// The Fig. 13 scenario as a running system: the same role deploys
	// on device-c and device-d; the command-side software is reused
	// verbatim (we literally reuse the same init closure), while the
	// register-side choreography differs per platform.
	fw := New()
	r1, err := NewRole("portable-nf", Demands{
		Network: &NetworkDemand{Gbps: 100},
		Host:    &HostDemand{Queues: 32},
	}, &LogicModule{Name: "nf-logic", Res: Resources{LUT: 30_000, REG: 45_000}})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRole("portable-nf", r1.Demands, r1.Logic)
	if err != nil {
		t.Fatal(err)
	}

	// The identical host-software procedure runs on both devices.
	bringUp := func(dev *Device) error {
		if err := dev.InitAll(); err != nil {
			return err
		}
		if err := dev.WriteTable(RBBNetwork, 0, 0, 0, 0xAA); err != nil {
			return err
		}
		_, err := dev.Stats(RBBUCK, 0)
		// Stats on the UCK itself has no source — expected failure is
		// fine; the point is the identical call sequence.
		_ = err
		return nil
	}
	for devName, r := range map[string]*Role{"device-c": r1, "device-d": r2} {
		dep, err := fw.Deploy(devName, r)
		if err != nil {
			t.Fatalf("%s: %v", devName, err)
		}
		if err := bringUp(dep.Device()); err != nil {
			t.Errorf("%s bring-up: %v", devName, err)
		}
	}
}

func TestEndToEndRetrievalThroughDeployment(t *testing.T) {
	fw := New()
	info, _ := apps.Lookup("retrieval")
	r, err := info.Role()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.Deploy("device-a", r); err != nil {
		t.Fatal(err)
	}
	engine, err := apps.NewRetrieval(platform.Xilinx, 32, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	corpus := workload.Embeddings(500, 32, 3)
	if _, err := engine.LoadCorpus(0, corpus); err != nil {
		t.Fatal(err)
	}
	q := workload.Embeddings(1, 32, 77)[0].Vec
	ids, done, err := engine.Query(0, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 5 || done <= 0 {
		t.Errorf("query returned %d ids at %v", len(ids), done)
	}
}

func TestEndToEndBoardTestAcrossVendors(t *testing.T) {
	// The board-test app validates a new card before fleet entry; run
	// it over each vendor's RBB stack.
	for _, vendor := range []platform.Vendor{platform.Xilinx, platform.Intel, platform.InHouse} {
		bt, err := apps.NewBoardTest(vendor, true)
		if err != nil {
			t.Fatal(err)
		}
		results := bt.RunAll(0)
		if !apps.AllPassed(results) {
			t.Errorf("%s board test failed: %+v", vendor, results)
		}
	}
}

func TestEndToEndHostNetworkOffload(t *testing.T) {
	hn, err := apps.NewHostNetwork(platform.Xilinx, 4, 16, true)
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := workload.Packets(workload.PacketConfig{Count: 500, Size: 256, Flows: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	var done sim.Time
	queues := map[int]bool{}
	for _, p := range pkts {
		_, q, d, act := hn.Offload(0, p)
		if act != apps.ActionToHost {
			t.Fatalf("unexpected action %v", act)
		}
		queues[q] = true
		if d > done {
			done = d
		}
	}
	if len(queues) < 20 {
		t.Errorf("flows spread over %d queues, want many", len(queues))
	}
	toHost, _, _, csums := hn.Stats()
	if toHost != 500 || csums != 500 {
		t.Errorf("toHost=%d csums=%d", toHost, csums)
	}
	// Per-queue monitoring really counted the DMA traffic.
	var total int64
	for q := range queues {
		qs, err := hn.Host.QueueStats(q)
		if err != nil {
			t.Fatal(err)
		}
		total += qs.Completed
	}
	if total != 500 {
		t.Errorf("per-queue completions sum to %d, want 500", total)
	}
}

func TestEndToEndCrossVendorAppStack(t *testing.T) {
	// The same application logic runs over Intel RBBs without change —
	// the wrapped interfaces are identical.
	gw, err := apps.NewSecGateway(platform.Intel, true)
	if err != nil {
		t.Fatal(err)
	}
	gw.DeployPolicy(apps.Policy{SrcPrefix: net.IPv4(10, 66, 0, 0), PrefixLen: 16, Action: apps.Deny})
	allowedPkt := &net.Packet{SrcIP: net.IPv4(8, 8, 8, 8), DstIP: net.IPv4(10, 9, 0, 1),
		Proto: net.ProtoTCP, SrcPort: 1, DstPort: 443, WireBytes: 256}
	if ok, _ := gw.Process(0, allowedPkt); !ok {
		t.Error("benign packet blocked on intel stack")
	}
	deniedPkt := &net.Packet{SrcIP: net.IPv4(10, 66, 1, 1), DstIP: net.IPv4(10, 9, 0, 1),
		Proto: net.ProtoTCP, SrcPort: 2, DstPort: 443, WireBytes: 256}
	if ok, _ := gw.Process(0, deniedPkt); ok {
		t.Error("malicious packet admitted on intel stack")
	}
}
