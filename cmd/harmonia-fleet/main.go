// Command harmonia-fleet drives the multi-device control plane: it
// commissions a heterogeneous fleet of catalog devices, places service
// replicas into their PR slots, and runs the operator drills —
// the scale-out sweep (aggregate throughput vs device count), the
// kill-a-device drill (health-driven failover with measured recovery
// time), the control-plane overhead bench (serial scan vs sharded
// fast path, emitted as BENCH_fleet.json), and the live-migration
// drill (stateful LB failover with and without carrying the connection
// table across, emitted as BENCH_migrate.json), the failure-storm
// chaos drill (one seeded injection schedule replayed unbudgeted vs
// budgeted and static vs derived shedding, emitted as
// BENCH_chaos.json), the gossip smoke drill (a full
// suspect/refute/confirm protocol cycle on a seeded fleet, emitted as
// BENCH_gossip.json), the multi-service co-residency drill (the
// storm replayed against three services of different classes sharing
// one fleet, emitted as BENCH_coresidency.json), the crash-safe
// rebalancing drill (a fragmented fleet rebalanced through
// pre-copy + delta-replay moves under migration-targeted fault
// injection, emitted as BENCH_rebalance.json), and the SLO drill (the
// storm judged by error-budget windows, burn-rate alerts and causal
// postmortems, emitted as BENCH_slo.json).
//
// Usage:
//
//	harmonia-fleet -scenario scale -devices 4
//	harmonia-fleet -scenario drill -devices 3 -app layer4-lb
//	harmonia-fleet -scenario bench -nodes 100,300,1000,10000 -json BENCH_fleet.json
//	harmonia-fleet -scenario bench -cpuprofile cpu.pprof -memprofile mem.pprof
//	harmonia-fleet -scenario migrate -json BENCH_migrate.json
//	harmonia-fleet -scenario chaos -devices 300 -seed 11 -budget 8
//	harmonia-fleet -scenario chaos -trace trace.json -metrics metrics.prom
//	harmonia-fleet -scenario gossip -devices 300 -seed 11 -racks 8
//	harmonia-fleet -scenario coresidency -devices 120 -seed 11 -budget 6
//	harmonia-fleet -scenario rebalance -devices 24 -seed 11 -budget 2
//	harmonia-fleet -scenario slo -devices 120 -seed 11 -budget 6
//	harmonia-fleet -scenario tracecheck -trace trace.json
//	harmonia-fleet -scenario tracecheck -trace rebal.json -cats packet,prload,heartbeat,rebalance
//
// The bench sweep's default sizes now reach the 10000-node scale
// point: the serial baseline is skipped there, and the report gates on
// the rack-hierarchical path's per-packet cost staying flat (within
// 1.25x) from 1000 to 10000 nodes.
//
// The chaos drill always runs with a flight recorder attached: when a
// gate fails, the last -flight events dump to chaos-flight.json next
// to the repro line. Passing -trace upgrades to full recording and
// writes a Chrome trace-event file Perfetto loads directly; -metrics
// writes the merged per-case registries as Prometheus text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"harmonia/internal/bench"
	"harmonia/internal/fleet"
	"harmonia/internal/obs"
	"harmonia/internal/sim"
)

// options collects the CLI knobs so scenarios stay testable.
type options struct {
	scenario string
	app      string
	devices  int
	gbps     float64
	seed     int64
	budget   int // chaos: concurrent PR-load cap
	racks    int // rack count override (0 = auto, one rack per 64 nodes)
	// bench scenario only.
	nodes    string // comma-separated fleet sizes
	jsonPath string // where to write the machine-readable report
	// observability (chaos and tracecheck scenarios).
	tracePath   string // Chrome trace-event output (chaos) / input (tracecheck)
	metricsPath string // Prometheus text exposition output
	flightN     int    // flight-recorder ring size per track
	cats        string // tracecheck: required-category override
}

func main() {
	var o options
	flag.StringVar(&o.scenario, "scenario", "scale", "scale | drill | bench | migrate | chaos | gossip | coresidency | rebalance | slo | tracecheck")
	flag.StringVar(&o.app, "app", "layer4-lb", "application to replicate across the fleet")
	flag.IntVar(&o.devices, "devices", 4, "fleet size (sweep upper bound for scale)")
	flag.Float64Var(&o.gbps, "gbps", 40, "offered load per device (Gbps)")
	flag.Int64Var(&o.seed, "seed", 7, "workload and router seed")
	flag.IntVar(&o.budget, "budget", 8, "chaos/coresidency: concurrent PR-load cap for the budgeted cases")
	flag.IntVar(&o.racks, "racks", 0, "rack count (0 = auto, one rack per 64 nodes)")
	flag.StringVar(&o.nodes, "nodes", "", "bench: comma-separated fleet sizes (default 100,300,1000,10000)")
	flag.StringVar(&o.jsonPath, "json", "BENCH_fleet.json", "bench: report path (empty to skip)")
	flag.StringVar(&o.tracePath, "trace", "", "chaos: write a Chrome trace-event file; tracecheck: file to validate")
	flag.StringVar(&o.metricsPath, "metrics", "", "chaos: write the merged registries as Prometheus text")
	flag.IntVar(&o.flightN, "flight", 2048, "chaos: flight-recorder ring size per track (when -trace is not set)")
	flag.StringVar(&o.cats, "cats", "", "tracecheck: comma-separated required categories (default: the chaos taxonomy)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// The generic -devices default (4) suits scale/drill; the chaos,
	// gossip and co-residency drills carry their own tentpole fleet
	// sizes. Only an explicit -devices overrides them.
	if o.scenario == "chaos" || o.scenario == "gossip" || o.scenario == "coresidency" || o.scenario == "rebalance" || o.scenario == "slo" {
		devicesGiven := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "devices" {
				devicesGiven = true
			}
		})
		if !devicesGiven {
			o.devices = 0
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	if err := run(os.Stdout, o); err != nil {
		fatal(err)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "harmonia-fleet:", err)
	os.Exit(1)
}

func run(w io.Writer, o options) error {
	traffic := fleet.DefaultTraffic(o.app)
	traffic.OfferedGbps = o.gbps
	traffic.Seed = o.seed
	cfg := fleet.DefaultConfig()
	cfg.Seed = o.seed
	cfg.Racks = o.racks

	switch o.scenario {
	case "scale":
		return runScale(w, cfg, o.app, o.devices, traffic)
	case "drill":
		return runDrill(w, cfg, o.app, o.devices, traffic)
	case "bench":
		return runBench(w, o)
	case "migrate":
		return runMigrate(w, o)
	case "chaos":
		return runChaos(w, o)
	case "gossip":
		return runGossip(w, o)
	case "coresidency":
		return runCoResidency(w, o)
	case "rebalance":
		return runRebalance(w, o)
	case "slo":
		return runSLO(w, o)
	case "tracecheck":
		return runTraceCheck(w, o)
	default:
		return fmt.Errorf("unknown scenario %q (want scale, drill, bench, migrate, chaos, gossip, coresidency, rebalance, slo or tracecheck)", o.scenario)
	}
}

// runScale sweeps the fleet 1..n devices and prints the aggregate
// throughput series.
func runScale(w io.Writer, cfg fleet.Config, app string, n int, t fleet.Traffic) error {
	fmt.Fprintf(w, "scale-out sweep: %s, 1..%d devices, %.0f Gbps offered per device\n\n",
		app, n, t.OfferedGbps)
	pts, err := fleet.ScaleOut(cfg, app, n, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-9s %-14s %-12s %-10s %-10s\n",
		"devices", "replicas", "goodput-gbps", "qps", "p50", "p99")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %-9d %-14.1f %-12.0f %-10v %-10v\n",
			p.Devices, p.Replicas, p.GoodputGbps, p.QPS, p.P50, p.P99)
	}
	return nil
}

// runDrill kills a device mid-run and prints the failover timeline.
func runDrill(w io.Writer, cfg fleet.Config, app string, n int, t fleet.Traffic) error {
	fmt.Fprintf(w, "kill-a-device drill: %s on %d devices, %.0f Gbps offered\n\n",
		app, n, t.OfferedGbps)
	d, err := fleet.KillDrill(cfg, app, n, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pre-fault:  %.1f Gbps, %.0f qps, p99 %v\n",
		d.Pre.GoodputGbps, d.Pre.QPS, d.Pre.P99)
	fmt.Fprintf(w, "killed:     %s at %v (silent: wire corrupted, heartbeats stop)\n",
		d.Killed, d.FaultAt)
	fmt.Fprintf(w, "detected:   %v (+%v, %d missed heartbeats at %v cadence)\n",
		d.DetectedAt, d.DetectedAt-d.FaultAt, cfg.FailedAfter, cfg.Heartbeat)
	fmt.Fprintf(w, "recovered:  %v — %d/%d tenants re-placed on survivors\n",
		d.RecoveredAt, d.Replaced, d.Moved)
	fmt.Fprintf(w, "recovery:   %v fault-to-full-replacement\n", d.RecoveryTime)
	if d.Unplaced > 0 {
		fmt.Fprintf(w, "UNPLACED:   %d tenants found no capacity\n", d.Unplaced)
	}
	fmt.Fprintf(w, "post-fault: %.1f Gbps, %.0f qps, p99 %v (%d survivors)\n\n",
		d.Post.GoodputGbps, d.Post.QPS, d.Post.P99, n-1)

	fmt.Fprintln(w, "state transitions:")
	for _, tr := range d.Transitions {
		fmt.Fprintf(w, "  %v\n", tr)
	}
	return nil
}

// runBench runs the fleet3 control-plane overhead sweep (default sizes
// include the 10000-node scale point), prints the scaling table, writes
// the machine-readable report, and gates on three invariants: the rack
// path staying flat from 1k to 10k nodes, per-packet allocations on
// both batched paths staying under bench.AllocBound at every swept
// size, and the batched fast path staying under bench.FastBatchedBoundNs
// at the 1000-node point.
func runBench(w io.Writer, o options) error {
	sizes, err := parseSizes(o.nodes)
	if err != nil {
		return err
	}
	if sizes == nil {
		sizes = bench.ControlPlaneScaleSizes
	}
	rep, err := bench.FleetControlPlaneReport(sizes)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "control-plane overhead: %s, %.0f Gbps/node, %v phase\n\n",
		rep.App, rep.GbpsPerNode, sim.Time(rep.PhasePs))
	fmt.Fprintf(w, "%-7s %-7s %-7s %-8s %-9s %-13s %-13s %-13s %-12s %-12s %-9s\n",
		"nodes", "shards", "racks", "cohorts", "packets",
		"base-ns/pkt", "fast-ns/pkt", "rack-ns/pkt",
		"fast-allocs", "rack-allocs", "speedup")
	for _, p := range rep.Points {
		baseNs, speedup := "-", "-"
		if p.BaselineNsPerPkt != nil {
			baseNs = fmt.Sprintf("%.0f", *p.BaselineNsPerPkt)
		}
		if p.SpeedupWall != nil {
			speedup = fmt.Sprintf("%.1f", *p.SpeedupWall)
		}
		fmt.Fprintf(w, "%-7d %-7d %-7d %-8d %-9d %-13s %-13.0f %-13.0f %-12.3f %-12.3f %-9s\n",
			p.Nodes, p.Shards, p.Racks, p.Cohorts, p.Packets,
			baseNs, p.FastNsPerPkt, p.RackNsPerPkt,
			p.FastAllocsPerPkt, p.RackAllocsPerPkt, speedup)
	}
	if rep.RackFlatRatio > 0 {
		fmt.Fprintf(w, "\nrack flat 10k/1k: %.3f (bound %.2f): %v\n",
			rep.RackFlatRatio, rep.RackFlatBound, rep.RackFlat)
	}
	fmt.Fprintf(w, "allocs/pkt <= %.2f at every size: %v\n", rep.AllocBound, rep.AllocsFlat)
	if rep.FastGateNsPerPkt > 0 {
		fmt.Fprintf(w, "fast path at %d nodes: %.1f ns/pkt (bound %.0f): %v\n",
			rep.FastGateNodes, rep.FastGateNsPerPkt, rep.FastGateBoundNs, rep.FastGate)
	}
	if o.jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", o.jsonPath)
	}
	if !rep.RackFlat {
		return fmt.Errorf("rack path not flat: 10k/1k ns/pkt ratio %.3f exceeds %.2f",
			rep.RackFlatRatio, rep.RackFlatBound)
	}
	if !rep.AllocsFlat {
		return fmt.Errorf("allocation gate failed: a swept size exceeds %.2f allocs/pkt on the fast or rack path",
			rep.AllocBound)
	}
	if !rep.FastGate {
		return fmt.Errorf("fast path too slow at %d nodes: %.1f ns/pkt exceeds %.0f",
			rep.FastGateNodes, rep.FastGateNsPerPkt, rep.FastGateBoundNs)
	}
	return nil
}

// gossipReport is the machine-readable fleet7 smoke artifact
// (BENCH_gossip.json): one full suspect/refute/confirm protocol cycle
// on a seeded fleet.
type gossipReport struct {
	Experiment string `json:"experiment"`
	App        string `json:"app"`
	Devices    int    `json:"devices"`
	Racks      int    `json:"racks"`
	Seed       int64  `json:"seed"`
	BoundPs    int64  `json:"detection_bound_ps"`

	// Refutation leg: a live node is falsely suspected and must refute
	// by bumping its incarnation, with no failover.
	SuspectedNode string `json:"suspected_node"`
	Refuted       bool   `json:"refuted"`
	RefuteClean   bool   `json:"refute_no_failover"`

	// Confirmation leg: a killed node must be confirmed dead within the
	// detection bound and its replicas re-placed.
	KilledNode       string `json:"killed_node"`
	DetectPs         int64  `json:"detect_latency_ps"`
	Confirmed        bool   `json:"confirmed_within_bound"`
	FailoverDone     bool   `json:"failover_completed"`
	ReplicasReplaced int    `json:"replicas_replaced"`

	Events []fleet.GossipEvent `json:"events"`
	Stats  gossipStatsJSON     `json:"stats"`
}

// gossipStatsJSON mirrors gossip.Stats with json tags for the artifact.
type gossipStatsJSON struct {
	Ticks         int64 `json:"ticks"`
	Probes        int64 `json:"probes"`
	Digests       int64 `json:"digests"`
	Suspicions    int64 `json:"suspicions"`
	Refutations   int64 `json:"refutations"`
	Confirmations int64 `json:"confirmations"`
}

// Gates reports whether the smoke cycle completed: false suspicion
// refuted without failover, real failure confirmed within the bound,
// failover done.
func (r *gossipReport) Gates() bool {
	return r.Refuted && r.RefuteClean && r.Confirmed && r.FailoverDone
}

// runGossip runs the fleet7 gossip smoke drill: build a seeded fleet
// with gossip health and rack-first dispatch, falsely suspect a live
// node (must refute, no failover), then kill a node (must be suspected,
// confirmed within the detection bound, and failed over).
func runGossip(w io.Writer, o options) error {
	n := o.devices
	if n <= 0 {
		n = 300
	}
	cfg := fleet.DefaultConfig()
	cfg.Seed = o.seed
	cfg.Racks = o.racks
	cfg.GossipHealth = true
	cfg.RackP2C = true
	c, err := fleet.BuildCluster(cfg, o.app, n, n)
	if err != nil {
		return err
	}
	c.RunMonitorUntil(2 * cfg.ReconfigTime)
	// A short serving burst freezes the rack layout and exercises the
	// rack-first dispatch path before the protocol legs run.
	t := fleet.DefaultTraffic(o.app)
	t.OfferedGbps = o.gbps * float64(n)
	t.Seed = o.seed
	if _, err := c.Serve(50*sim.Microsecond, t); err != nil {
		return err
	}
	bound := c.GossipDetectionBound()
	nodes := c.Nodes()
	rep := &gossipReport{
		Experiment: "fleet7", App: o.app, Devices: n, Seed: o.seed,
		Racks: c.RackCount(), BoundPs: int64(bound),
	}
	fmt.Fprintf(w, "gossip smoke: %s on %d devices, %d racks, seed %d, detection bound %v\n\n",
		o.app, n, rep.Racks, o.seed, bound)

	// Leg 1: false suspicion. The suspected node is alive, so its next
	// direct probe answers and the detector refutes by bumping the
	// incarnation — no state transition, no failover.
	suspect := nodes[1].ID
	rep.SuspectedNode = suspect
	if _, err := c.InjectGossipSuspicion(suspect); err != nil {
		return err
	}
	c.RunMonitorUntil(c.Now() + bound)
	failoversBefore := len(c.Failovers())
	for _, ev := range c.GossipEvents() {
		if ev.Node == suspect && ev.Kind == "refuted" {
			rep.Refuted = true
		}
	}
	rep.RefuteClean = failoversBefore == 0
	fmt.Fprintf(w, "false suspicion of %s: refuted=%v failovers=%d\n",
		suspect, rep.Refuted, failoversBefore)

	// Leg 2: real failure. Kill a node and let the detector run the
	// full suspect -> confirm cycle; confirmation triggers failover.
	killed := nodes[len(nodes)/2].ID
	rep.KilledNode = killed
	faultAt := c.Now()
	if err := c.Kill(killed); err != nil {
		return err
	}
	c.RunMonitorUntil(faultAt + bound + cfg.Heartbeat)
	for _, tr := range c.Transitions() {
		if tr.Node == killed && tr.To == fleet.Failed {
			rep.DetectPs = int64(tr.At - faultAt)
			rep.Confirmed = tr.At-faultAt <= bound
			break
		}
	}
	for _, f := range c.Failovers() {
		if f.Node == killed {
			rep.FailoverDone = true
			rep.ReplicasReplaced = f.Replaced
		}
	}
	fmt.Fprintf(w, "killed %s at %v: detected in %v (bound %v), failover=%v replaced=%d\n",
		killed, faultAt, sim.Time(rep.DetectPs), bound, rep.FailoverDone, rep.ReplicasReplaced)

	rep.Events = c.GossipEvents()
	s := c.GossipStats()
	rep.Stats = gossipStatsJSON{
		Ticks: s.Ticks, Probes: s.Probes, Digests: s.Digests,
		Suspicions: s.Suspicions, Refutations: s.Refutations,
		Confirmations: s.Confirmations,
	}
	fmt.Fprintln(w, "\nprotocol events:")
	for _, ev := range rep.Events {
		fmt.Fprintf(w, "  %v %-10s %s (incarnation %d)\n", ev.At, ev.Kind, ev.Node, ev.Incarnation)
	}
	fmt.Fprintf(w, "\nstats: ticks=%d probes=%d digests=%d suspicions=%d refutations=%d confirmations=%d\n",
		s.Ticks, s.Probes, s.Digests, s.Suspicions, s.Refutations, s.Confirmations)

	path := o.jsonPath
	if path == "BENCH_fleet.json" { // the -json flag default belongs to bench
		path = "BENCH_gossip.json"
	}
	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	if !rep.Gates() {
		return fmt.Errorf("gossip smoke incomplete: refuted=%v clean=%v confirmed=%v failover=%v",
			rep.Refuted, rep.RefuteClean, rep.Confirmed, rep.FailoverDone)
	}
	return nil
}

// runMigrate runs the fleet4 live-migration drill: the same stateful-LB
// failover cold and with the connection table carried across, judged
// against the Maglev re-hash bound.
func runMigrate(w io.Writer, o options) error {
	rep, d, err := bench.FleetMigrationReport()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "live-migration drill: %s on %d devices, %d backends, killed %s\n\n",
		rep.App, rep.Devices, rep.Backends, rep.Killed)
	fmt.Fprintf(w, "%-10s %-12s %-11s %-12s %-9s %-10s\n",
		"case", "established", "disrupted", "disruption", "carried", "recovery")
	for _, p := range []bench.MigrationPoint{rep.Cold, rep.Migrated} {
		name := "cold"
		if p.Migrated {
			name = "migrated"
		}
		fmt.Fprintf(w, "%-10s %-12d %-11d %-12.4f %-9d %-10v\n",
			name, p.Established, p.Disrupted, p.Disruption, p.FlowsCarried, p.RecoveryTime())
	}
	fmt.Fprintf(w, "\nmaglev re-hash bound: %.4f (backend drain remapped this fraction)\n",
		rep.MaglevBound)
	fmt.Fprintf(w, "strictly fewer disrupted: %v\nwithin maglev bound:      %v\n",
		rep.StrictlyFewer, rep.WithinBound)
	fmt.Fprintln(w, "\nmigrations:")
	for _, m := range d.Records {
		mode := "snapshot"
		if m.Live {
			mode = "live"
		}
		fmt.Fprintf(w, "  %s: %s -> %s at %v (%s, %d/%d flows restored, age %v)\n",
			m.Replica, m.From, m.To, m.At, mode, m.Restored, m.Flows, m.SnapshotAge)
	}
	if o.jsonPath == "" {
		return nil
	}
	path := o.jsonPath
	if path == "BENCH_fleet.json" { // the -json flag default belongs to bench
		path = "BENCH_migrate.json"
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nwrote %s\n", path)
	return nil
}

// runChaos runs the fleet5 failure-storm drill: one seeded injection
// schedule replayed against three fleets (unbudgeted/static,
// budgeted/static, budgeted/derived-shedding), gated on the PR-load
// budget holding, the unbudgeted fleet exceeding it, and derived
// shedding keeping packets off alarmed nodes.
func runChaos(w io.Writer, o options) error {
	opts := fleet.DefaultChaosOptions()
	if o.devices > 0 {
		opts.Devices = o.devices
	}
	opts.Budget = o.budget
	opts.Seed = o.seed
	// The drill always flies with a recorder: full recording when the
	// operator asked for a trace, otherwise a bounded flight recorder
	// whose last events dump on gate failure.
	var rec *obs.Recorder
	if o.tracePath != "" {
		rec = obs.NewRecorder()
	} else {
		rec = obs.NewFlightRecorder(o.flightN)
	}
	opts.Trace = rec
	rep, d, err := bench.FleetChaosReport(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "failure-storm drill: %s on %d devices, rack size %d, seed %d, budget %d\n",
		rep.App, rep.Devices, rep.RackSize, rep.Seed, rep.Budget)
	fmt.Fprintf(w, "storm: %d injections over [%v, %v]\n\n",
		len(rep.Injections), d.StormStart, d.StormEnd)
	fmt.Fprintf(w, "%-18s %-13s %-10s %-8s %-9s %-10s %-11s %-11s %-8s\n",
		"case", "availability", "peak-load", "queued", "failures", "failovers", "p99-recov", "disruption", "alarmed")
	for _, c := range rep.Cases {
		fmt.Fprintf(w, "%-18s %-13.4f %-10d %-8d %-9d %-10d %-11v %-11.4f %-8d\n",
			c.Name, c.Availability, c.PeakConcurrentLoads, c.LoadsQueued, c.LoadFailures,
			c.Failovers, sim.Time(c.P99RecoveryPs), c.Disruption, c.AlarmedNodePackets)
	}
	fmt.Fprintf(w, "\nbudget bounded:         %v\nunbudgeted exceeds:     %v\nno traffic after alarm: %v\n",
		rep.BudgetBounded, rep.UnbudgetedExceeds, rep.NoTrafficAfterAlarm)
	path := o.jsonPath
	if path == "BENCH_fleet.json" { // the -json flag default belongs to bench
		path = "BENCH_chaos.json"
	}
	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	// Observability artifacts are written before the gate check so a
	// failing run still leaves its evidence behind.
	if o.tracePath != "" {
		if err := writeTraceFile(o.tracePath, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.tracePath)
	}
	if o.metricsPath != "" {
		var regs []*obs.Registry
		for _, c := range d.Cases {
			if c.Registry != nil {
				regs = append(regs, c.Registry)
			}
		}
		f, err := os.Create(o.metricsPath)
		if err != nil {
			return err
		}
		werr := obs.WriteProm(f, regs...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(w, "wrote %s\n", o.metricsPath)
	}
	if !rep.Gates() {
		if o.tracePath == "" {
			// Dump the flight recorder: the last -flight events per
			// track, the forensic record of the moments before the gate
			// went red.
			const flightPath = "chaos-flight.json"
			if werr := writeTraceFile(flightPath, rec); werr == nil {
				return fmt.Errorf("chaos gates failed; flight recording in %s; reproduce with: %s",
					flightPath, rep.Repro)
			}
		}
		return fmt.Errorf("chaos gates failed; reproduce with: %s", rep.Repro)
	}
	return nil
}

// runCoResidency runs the fleet8 multi-service co-residency drill: the
// failure storm against three services of different classes sharing
// one fleet, gated on latency-critical availability dominating bulk
// and the fleet-wide aggregate, bulk shedding strictly before
// latency-critical on banded nodes, and failover PR loads provably
// preempting the elective scale-out queue.
func runCoResidency(w io.Writer, o options) error {
	opts := fleet.DefaultCoResOptions()
	if o.devices > 0 {
		opts.Devices = o.devices
	}
	// The drill's tentpole budget (6) differs from the -budget default
	// tuned for chaos; only an explicit flag overrides it.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "budget" {
			opts.Budget = o.budget
		}
	})
	opts.Seed = o.seed
	var rec *obs.Recorder
	if o.tracePath != "" {
		rec = obs.NewRecorder()
	} else {
		rec = obs.NewFlightRecorder(o.flightN)
	}
	opts.Trace = rec
	rep, d, err := bench.FleetCoResReport(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "co-residency drill: %d services on %d devices, rack size %d, seed %d, budget %d\n",
		len(rep.Services), rep.Devices, rep.RackSize, rep.Seed, rep.Budget)
	fmt.Fprintf(w, "storm: %d injections over [%v, %v]; fleet availability %.4f\n\n",
		len(rep.Injections), d.StormStart, d.StormEnd, rep.FleetAvailability)
	fmt.Fprintf(w, "%-14s %-18s %-6s %-13s %-9s %-9s %-7s %-10s\n",
		"service", "class", "slo", "availability", "sent", "dropped", "shed", "p99")
	for _, s := range rep.Services {
		fmt.Fprintf(w, "%-14s %-18s %-6.3f %-13.4f %-9d %-9d %-7d %-10v\n",
			s.Name, s.Class, s.SLOAvailability, s.Availability, s.Sent, s.Dropped,
			s.Shed, sim.Time(s.P99Ps))
	}
	fmt.Fprintf(w, "\nshed order: %d banded window-node observations, %d proofs, %d violations, %d lc packets shed\n",
		len(rep.ShedObservations), rep.ShedOrderProofs, rep.ShedOrderViolations, rep.LCShed)
	fmt.Fprintf(w, "electives: %d requested, %d placed, %d unplaced; %d preempted by failovers (%d grant-log pairs), peak load %d/%d\n",
		rep.ElectivesRequested, rep.ElectivesCompleted, rep.ElectivesUnplaced,
		rep.LoadsPreempted, len(rep.PreemptionPairs), rep.PeakConcurrentLoads, rep.Budget)
	fmt.Fprintf(w, "\nslo order held:    %v\nshed order held:   %v\nfailover preempts: %v\n",
		rep.SLOOrderHeld, rep.ShedOrderHeld, rep.FailoverPreempts)
	path := o.jsonPath
	if path == "BENCH_fleet.json" { // the -json flag default belongs to bench
		path = "BENCH_coresidency.json"
	}
	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	if o.tracePath != "" {
		if err := writeTraceFile(o.tracePath, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.tracePath)
	}
	if o.metricsPath != "" {
		f, err := os.Create(o.metricsPath)
		if err != nil {
			return err
		}
		werr := obs.WriteProm(f, d.Registry)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(w, "wrote %s\n", o.metricsPath)
	}
	if !rep.Gates() {
		if o.tracePath == "" {
			const flightPath = "coresidency-flight.json"
			if werr := writeTraceFile(flightPath, rec); werr == nil {
				return fmt.Errorf("co-residency gates failed; flight recording in %s; reproduce with: %s",
					flightPath, rep.Repro)
			}
		}
		return fmt.Errorf("co-residency gates failed; reproduce with: %s", rep.Repro)
	}
	return nil
}

// runRebalance runs the fleet9 crash-safe rebalancing drill: a
// fragmented fleet rebalanced three times — a clean planned cycle under
// a corrupted delta frame and a stalled table read, a source kill
// mid-pre-copy degrading to snapshot-fallback failover, and a budget-1
// run where a concurrent failover preempts the pending moves.
func runRebalance(w io.Writer, o options) error {
	opts := fleet.DefaultRebalanceOptions()
	if o.devices > 0 {
		opts.Devices = o.devices
	}
	// The drill's tentpole budget (2) differs from the -budget default
	// tuned for chaos; only an explicit flag overrides it.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "budget" {
			opts.Budget = o.budget
		}
	})
	opts.Seed = o.seed
	var rec *obs.Recorder
	if o.tracePath != "" {
		rec = obs.NewRecorder()
	} else {
		rec = obs.NewFlightRecorder(o.flightN)
	}
	opts.Trace = rec
	rep, d, err := bench.FleetRebalanceReport(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "crash-safe rebalancing drill: %s on %d devices, seed %d, budget %d, cold-restart bound %.4f\n\n",
		rep.App, rep.Devices, rep.Seed, rep.Budget, rep.ColdRestartBound)
	fmt.Fprintf(w, "%-12s %-9s %-9s %-8s %-8s %-8s %-11s %-10s %-10s %-6s %-6s %-7s\n",
		"case", "frag-pre", "frag-post", "done", "aborted", "retries",
		"disruption", "reclaimed", "fallbacks", "peak", "pairs", "budget")
	for _, cc := range rep.Cases {
		fmt.Fprintf(w, "%-12s %-9.4f %-9.4f %-8d %-8d %-8d %-11.4f %-10d %-10d %-6d %-6d %-7d\n",
			cc.Name, cc.FragScoreBefore, cc.FragScoreAfter, cc.MovesDone, cc.MovesAborted,
			cc.Retries, cc.Disruption, cc.QueuesReclaimed, cc.SnapshotFallbacks,
			cc.PeakLoads, cc.PreemptionPairs, cc.Budget)
	}
	fmt.Fprintf(w, "\ncarries all flows:   %v\nfrag decreases:      %v\nfaulted within bound: %v\nfailover preempts:   %v\n",
		rep.CarriesAllFlows, rep.FragDecreases, rep.FaultedWithinBound, rep.FailoverPreempts)
	fmt.Fprintln(w, "\nrebalance moves:")
	for _, cc := range d.Cases {
		for _, m := range cc.Records {
			if m.PlannedAt == 0 {
				continue
			}
			outcome := "done"
			if m.Aborted {
				outcome = "aborted"
			}
			fmt.Fprintf(w, "  %s: %s %s -> %s planned %v pre-copy %d delta %d retries %d %s\n",
				cc.Name, m.Replica, m.From, m.To, m.PlannedAt,
				m.PreCopyRows, m.DeltaRows, m.Retries, outcome)
		}
	}
	path := o.jsonPath
	if path == "BENCH_fleet.json" { // the -json flag default belongs to bench
		path = "BENCH_rebalance.json"
	}
	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	if o.tracePath != "" {
		if err := writeTraceFile(o.tracePath, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.tracePath)
	}
	if o.metricsPath != "" {
		var regs []*obs.Registry
		for _, cc := range d.Cases {
			if cc.Registry != nil {
				regs = append(regs, cc.Registry)
			}
		}
		f, err := os.Create(o.metricsPath)
		if err != nil {
			return err
		}
		werr := obs.WriteProm(f, regs...)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(w, "wrote %s\n", o.metricsPath)
	}
	if !rep.Gates() {
		if o.tracePath == "" {
			const flightPath = "rebalance-flight.json"
			if werr := writeTraceFile(flightPath, rec); werr == nil {
				return fmt.Errorf("rebalance gates failed; flight recording in %s; reproduce with: %s",
					flightPath, rep.Repro)
			}
		}
		return fmt.Errorf("rebalance gates failed; reproduce with: %s", rep.Repro)
	}
	return nil
}

// runSLO runs the fleet10 SLO drill: the failure storm against the
// co-resident fleet with error-budget windows, burn-rate alerting and
// causal postmortems armed, gated on the storm firing attributed
// latency-critical alerts, a fault-free control staying silent, every
// alert resolving inside the recovery bound, and byte-identical alert
// state across the batch-quantum/worker sweep.
func runSLO(w io.Writer, o options) error {
	opts := fleet.DefaultSLOOptions()
	if o.devices > 0 {
		opts.Devices = o.devices
	}
	// The drill's tentpole budget (6) differs from the -budget default
	// tuned for chaos; only an explicit flag overrides it.
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "budget" {
			opts.Budget = o.budget
		}
	})
	opts.Seed = o.seed
	var rec *obs.Recorder
	if o.tracePath != "" {
		rec = obs.NewRecorder()
	} else {
		rec = obs.NewFlightRecorder(o.flightN)
	}
	opts.Trace = rec
	rep, d, err := bench.FleetSLOReport(opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "slo drill: %d services on %d devices, rack size %d, seed %d, budget %d\n",
		len(rep.Services), rep.Devices, rep.RackSize, rep.Seed, rep.Budget)
	fmt.Fprintf(w, "storm: %d injections over [%v, %v]; windows %s; lookback %v\n\n",
		len(rep.Injections), d.StormStart, d.StormEnd,
		strings.Join(rep.Windows, ","), d.Lookback)
	fmt.Fprintf(w, "%-14s %-18s %-9s %-13s %-10s %-8s %-9s\n",
		"service", "class", "target", "availability", "peak-burn", "firings", "resolves")
	for _, s := range rep.Services {
		fmt.Fprintf(w, "%-14s %-18s %-9.4f %-13.4f %-10.1f %-8d %-9d\n",
			s.Name, s.Class, s.Target, s.Availability, s.PeakFastBurn, s.Firings, s.Resolves)
	}
	fmt.Fprintf(w, "\nalerts: %d firings (%d latency-critical), %d unattributed; control: %d firings, %d attributions\n",
		rep.FiringsTotal, rep.FiringsLC, rep.UnattributedFirings,
		rep.ControlFirings, rep.ControlAttributions)
	fmt.Fprintf(w, "resolution: all resolved %v, last at %v, bound %v\n",
		rep.AllResolved, d.LastResolvedAt, d.RecoveryBound)
	fmt.Fprintf(w, "sweep: %s\n", strings.Join(rep.SweepVariants, "; "))
	if rep.Timeline != "" {
		fmt.Fprintf(w, "\n%s", rep.Timeline)
	}
	fmt.Fprintf(w, "\nalerts attributed: %v\nalerts resolved:   %v\ndeterministic:     %v\n",
		rep.AlertsAttributed, rep.AlertsResolved, rep.Deterministic)
	path := o.jsonPath
	if path == "BENCH_fleet.json" { // the -json flag default belongs to bench
		path = "BENCH_slo.json"
	}
	if path != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nwrote %s\n", path)
	}
	if o.tracePath != "" {
		if err := writeTraceFile(o.tracePath, rec); err != nil {
			return err
		}
		fmt.Fprintf(w, "wrote %s\n", o.tracePath)
	}
	if o.metricsPath != "" {
		f, err := os.Create(o.metricsPath)
		if err != nil {
			return err
		}
		werr := obs.WriteProm(f, d.Registry)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Fprintf(w, "wrote %s\n", o.metricsPath)
	}
	if !rep.Gates() {
		if o.tracePath == "" {
			const flightPath = "slo-flight.json"
			if werr := writeTraceFile(flightPath, rec); werr == nil {
				return fmt.Errorf("slo gates failed; flight recording in %s; reproduce with: %s",
					flightPath, rep.Repro)
			}
		}
		return fmt.Errorf("slo gates failed; reproduce with: %s", rep.Repro)
	}
	return nil
}

// writeTraceFile exports a recorder as Chrome trace-event JSON.
func writeTraceFile(path string, rec *obs.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := rec.WriteTrace(f)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// traceRequiredCats lists the span kinds a chaos trace must carry —
// the tentpole taxonomy the tracecheck scenario (and CI's trace-smoke
// step) asserts on.
var traceRequiredCats = []obs.Cat{
	obs.CatPacket, obs.CatPRLoad, obs.CatHeartbeat, obs.CatMigration, obs.CatFault,
	obs.CatRack, obs.CatGossip,
}

// runTraceCheck validates a trace file: parseable Chrome trace-event
// JSON, complete event fields, monotonic timestamps, and at least one
// event of every required category. The default requirement is the
// chaos taxonomy; -cats overrides it (the rebalance trace, say,
// carries rebalance spans but no gossip).
func runTraceCheck(w io.Writer, o options) error {
	if o.tracePath == "" {
		return fmt.Errorf("tracecheck needs -trace <file>")
	}
	required := traceRequiredCats
	if strings.TrimSpace(o.cats) != "" {
		required = nil
		for _, part := range strings.Split(o.cats, ",") {
			if s := strings.TrimSpace(part); s != "" {
				required = append(required, obs.Cat(s))
			}
		}
	}
	data, err := os.ReadFile(o.tracePath)
	if err != nil {
		return err
	}
	stats, err := obs.ValidateTrace(data, required)
	if err != nil {
		return fmt.Errorf("tracecheck %s: %w", o.tracePath, err)
	}
	fmt.Fprintf(w, "trace ok: %s — %d events (%d metadata)\n",
		o.tracePath, stats.Events, stats.Metadata)
	for _, cat := range []obs.Cat{obs.CatPacket, obs.CatPRLoad, obs.CatHeartbeat,
		obs.CatHealth, obs.CatMigration, obs.CatFault, obs.CatCmd,
		obs.CatRack, obs.CatGossip, obs.CatRebalance, obs.CatSLO, obs.CatAlert} {
		if n := stats.ByCat[string(cat)]; n > 0 {
			fmt.Fprintf(w, "  %-10s %d\n", cat, n)
		}
	}
	return nil
}

// parseSizes parses the -nodes list; empty means the default sweep.
func parseSizes(s string) ([]int, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("invalid -nodes entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
