// Command harmonia-fleet drives the multi-device control plane: it
// commissions a heterogeneous fleet of catalog devices, places service
// replicas into their PR slots, and runs the two operator drills —
// the scale-out sweep (aggregate throughput vs device count) and the
// kill-a-device drill (health-driven failover with measured recovery
// time).
//
// Usage:
//
//	harmonia-fleet -scenario scale -devices 4
//	harmonia-fleet -scenario drill -devices 3 -app layer4-lb
//	harmonia-fleet -scenario drill -gbps 60 -seed 11
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"harmonia/internal/fleet"
)

func main() {
	scenario := flag.String("scenario", "scale", "scale | drill")
	app := flag.String("app", "layer4-lb", "application to replicate across the fleet")
	devices := flag.Int("devices", 4, "fleet size (sweep upper bound for scale)")
	gbps := flag.Float64("gbps", 40, "offered load per device (Gbps)")
	seed := flag.Int64("seed", 7, "workload and router seed")
	flag.Parse()

	if err := run(os.Stdout, *scenario, *app, *devices, *gbps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-fleet:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, scenario, app string, devices int, gbps float64, seed int64) error {
	traffic := fleet.DefaultTraffic(app)
	traffic.OfferedGbps = gbps
	traffic.Seed = seed
	cfg := fleet.DefaultConfig()
	cfg.Seed = seed

	switch scenario {
	case "scale":
		return runScale(w, cfg, app, devices, traffic)
	case "drill":
		return runDrill(w, cfg, app, devices, traffic)
	default:
		return fmt.Errorf("unknown scenario %q (want scale or drill)", scenario)
	}
}

// runScale sweeps the fleet 1..n devices and prints the aggregate
// throughput series.
func runScale(w io.Writer, cfg fleet.Config, app string, n int, t fleet.Traffic) error {
	fmt.Fprintf(w, "scale-out sweep: %s, 1..%d devices, %.0f Gbps offered per device\n\n",
		app, n, t.OfferedGbps)
	pts, err := fleet.ScaleOut(cfg, app, n, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %-9s %-14s %-12s %-10s %-10s\n",
		"devices", "replicas", "goodput-gbps", "qps", "p50", "p99")
	for _, p := range pts {
		fmt.Fprintf(w, "%-8d %-9d %-14.1f %-12.0f %-10v %-10v\n",
			p.Devices, p.Replicas, p.GoodputGbps, p.QPS, p.P50, p.P99)
	}
	return nil
}

// runDrill kills a device mid-run and prints the failover timeline.
func runDrill(w io.Writer, cfg fleet.Config, app string, n int, t fleet.Traffic) error {
	fmt.Fprintf(w, "kill-a-device drill: %s on %d devices, %.0f Gbps offered\n\n",
		app, n, t.OfferedGbps)
	d, err := fleet.KillDrill(cfg, app, n, t)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "pre-fault:  %.1f Gbps, %.0f qps, p99 %v\n",
		d.Pre.GoodputGbps, d.Pre.QPS, d.Pre.P99)
	fmt.Fprintf(w, "killed:     %s at %v (silent: wire corrupted, heartbeats stop)\n",
		d.Killed, d.FaultAt)
	fmt.Fprintf(w, "detected:   %v (+%v, %d missed heartbeats at %v cadence)\n",
		d.DetectedAt, d.DetectedAt-d.FaultAt, cfg.FailedAfter, cfg.Heartbeat)
	fmt.Fprintf(w, "recovered:  %v — %d/%d tenants re-placed on survivors\n",
		d.RecoveredAt, d.Replaced, d.Moved)
	fmt.Fprintf(w, "recovery:   %v fault-to-full-replacement\n", d.RecoveryTime)
	if d.Unplaced > 0 {
		fmt.Fprintf(w, "UNPLACED:   %d tenants found no capacity\n", d.Unplaced)
	}
	fmt.Fprintf(w, "post-fault: %.1f Gbps, %.0f qps, p99 %v (%d survivors)\n\n",
		d.Post.GoodputGbps, d.Post.QPS, d.Post.P99, n-1)

	fmt.Fprintln(w, "state transitions:")
	for _, tr := range d.Transitions {
		fmt.Fprintf(w, "  %v\n", tr)
	}
	return nil
}
