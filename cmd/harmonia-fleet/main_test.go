package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func opts(scenario string, devices int) options {
	return options{scenario: scenario, app: "layer4-lb", devices: devices, gbps: 40, seed: 7}
}

func TestRunScale(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, opts("scale", 2)); err != nil {
		t.Fatalf("scale scenario: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "goodput-gbps") {
		t.Errorf("missing sweep header:\n%s", s)
	}
	if got := strings.Count(s, "\n"); got < 4 {
		t.Errorf("sweep printed %d lines, want rows for 1 and 2 devices:\n%s", got, s)
	}
}

func TestRunDrill(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, opts("drill", 3)); err != nil {
		t.Fatalf("drill scenario: %v", err)
	}
	s := out.String()
	for _, want := range []string{"killed:", "detected:", "recovery:", "state transitions:", "-> drained"} {
		if !strings.Contains(s, want) {
			t.Errorf("drill output missing %q:\n%s", want, s)
		}
	}
}

func TestRunBench(t *testing.T) {
	// Tiny fleet sizes keep the serial baseline fast; the real sweep
	// (100/300/1000) runs in CI's bench-smoke job.
	o := opts("bench", 0)
	o.nodes = "2,4"
	o.jsonPath = filepath.Join(t.TempDir(), "BENCH_fleet.json")
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatalf("bench scenario: %v", err)
	}
	s := out.String()
	for _, want := range []string{"base-ns/pkt", "fast-ns/pkt", "wrote"} {
		if !strings.Contains(s, want) {
			t.Errorf("bench output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(o.jsonPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Experiment string `json:"experiment"`
		Points     []struct {
			Nodes            int     `json:"nodes"`
			Packets          int64   `json:"packets"`
			BaselineNsPerPkt float64 `json:"baseline_ns_per_pkt"`
			FastNsPerPkt     float64 `json:"fast_ns_per_pkt"`
		} `json:"points"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Experiment != "fleet3" || len(rep.Points) != 2 {
		t.Fatalf("report = %+v, want fleet3 with 2 points", rep)
	}
	for _, p := range rep.Points {
		if p.Packets == 0 || p.BaselineNsPerPkt <= 0 || p.FastNsPerPkt <= 0 {
			t.Errorf("point %+v has empty measurements", p)
		}
	}
}

func TestRunMigrate(t *testing.T) {
	o := opts("migrate", 0)
	o.jsonPath = filepath.Join(t.TempDir(), "BENCH_migrate.json")
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatalf("migrate scenario: %v", err)
	}
	s := out.String()
	for _, want := range []string{"cold", "migrated", "maglev re-hash bound", "migrations:", "wrote"} {
		if !strings.Contains(s, want) {
			t.Errorf("migrate output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(o.jsonPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Experiment string `json:"experiment"`
		Cold       struct {
			Disrupted int `json:"disrupted_flows"`
		} `json:"cold"`
		Migrated struct {
			Disrupted    int `json:"disrupted_flows"`
			FlowsCarried int `json:"flows_carried"`
		} `json:"migrated"`
		StrictlyFewer bool `json:"strictly_fewer"`
		WithinBound   bool `json:"within_bound"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Experiment != "fleet4" {
		t.Errorf("experiment = %q, want fleet4", rep.Experiment)
	}
	if !rep.StrictlyFewer || !rep.WithinBound {
		t.Errorf("gates failed: strictly_fewer=%v within_bound=%v (cold %d vs migrated %d disrupted)",
			rep.StrictlyFewer, rep.WithinBound, rep.Cold.Disrupted, rep.Migrated.Disrupted)
	}
	if rep.Migrated.FlowsCarried == 0 {
		t.Error("migrated case carried no flows")
	}
}

func TestRunBenchBadNodes(t *testing.T) {
	o := opts("bench", 0)
	o.nodes = "10,zero"
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("malformed -nodes list accepted")
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, opts("bogus", 2)); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(&out, opts("drill", 1)); err == nil {
		t.Error("1-device drill accepted (needs survivors)")
	}
	bad := opts("scale", 2)
	bad.app = "ghost-app"
	if err := run(&out, bad); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestRunChaos(t *testing.T) {
	// A small storm keeps the smoke test fast; the tentpole 300-node
	// drill runs in CI's bench-smoke job.
	o := opts("chaos", 24)
	o.seed = 11
	o.budget = 2
	o.jsonPath = filepath.Join(t.TempDir(), "BENCH_chaos.json")
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatalf("chaos scenario: %v", err)
	}
	s := out.String()
	for _, want := range []string{"unbudgeted-static", "budgeted-static", "budgeted-derived",
		"budget bounded:         true", "unbudgeted exceeds:     true",
		"no traffic after alarm: true", "wrote"} {
		if !strings.Contains(s, want) {
			t.Errorf("chaos output missing %q:\n%s", want, s)
		}
	}
	data, err := os.ReadFile(o.jsonPath)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep struct {
		Experiment string `json:"experiment"`
		Repro      string `json:"repro"`
		Cases      []struct {
			Name                string `json:"name"`
			Budgeted            bool   `json:"budgeted"`
			PeakConcurrentLoads int    `json:"peak_concurrent_loads"`
			AlarmedNodePackets  int64  `json:"alarmed_node_packets"`
		} `json:"cases"`
		BudgetBounded       bool `json:"budget_bounded"`
		UnbudgetedExceeds   bool `json:"unbudgeted_exceeds"`
		NoTrafficAfterAlarm bool `json:"no_traffic_after_alarm"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report not valid JSON: %v", err)
	}
	if rep.Experiment != "fleet5" || len(rep.Cases) != 3 {
		t.Fatalf("report = %+v, want fleet5 with 3 cases", rep)
	}
	if !rep.BudgetBounded || !rep.UnbudgetedExceeds || !rep.NoTrafficAfterAlarm {
		t.Errorf("gates failed: bounded=%v exceeds=%v no-alarm-traffic=%v",
			rep.BudgetBounded, rep.UnbudgetedExceeds, rep.NoTrafficAfterAlarm)
	}
	if !strings.Contains(rep.Repro, "-scenario chaos") || !strings.Contains(rep.Repro, "-seed 11") {
		t.Errorf("repro line %q does not rebuild the run", rep.Repro)
	}
}

func TestRunChaosTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	o := opts("chaos", 24)
	o.seed = 11
	o.budget = 2
	o.jsonPath = ""
	o.tracePath = filepath.Join(dir, "trace.json")
	o.metricsPath = filepath.Join(dir, "metrics.prom")
	var out bytes.Buffer
	if err := run(&out, o); err != nil {
		t.Fatalf("traced chaos scenario: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "wrote "+o.tracePath) || !strings.Contains(s, "wrote "+o.metricsPath) {
		t.Errorf("missing artifact confirmations:\n%s", s)
	}

	// The trace must survive the same validation CI's trace-smoke runs.
	var check bytes.Buffer
	co := options{scenario: "tracecheck", tracePath: o.tracePath}
	if err := run(&check, co); err != nil {
		t.Fatalf("tracecheck on fresh trace: %v", err)
	}
	for _, cat := range []string{"packet", "prload", "heartbeat", "migration", "fault"} {
		if !strings.Contains(check.String(), cat) {
			t.Errorf("tracecheck output missing category %q:\n%s", cat, check.String())
		}
	}

	// The metrics exposition must carry the registry families from
	// every case, labelled by case name.
	prom, err := os.ReadFile(o.metricsPath)
	if err != nil {
		t.Fatalf("metrics not written: %v", err)
	}
	for _, want := range []string{
		"# TYPE harmonia_router_sent_total counter",
		"# TYPE harmonia_route_latency_window_ps summary",
		`case="unbudgeted-static"`,
		`case="budgeted-derived"`,
		"harmonia_pr_loads_peak_concurrent",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
}

func TestRunTraceCheckRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"traceEvents": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&bytes.Buffer{}, options{scenario: "tracecheck", tracePath: bad}); err == nil {
		t.Error("empty trace accepted")
	}
	if err := run(&bytes.Buffer{}, options{scenario: "tracecheck"}); err == nil {
		t.Error("tracecheck without -trace accepted")
	}
}

func TestRunChaosBadBudget(t *testing.T) {
	o := opts("chaos", 24)
	o.budget = 0
	if err := run(&bytes.Buffer{}, o); err == nil {
		t.Error("zero budget accepted")
	}
}
