package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunScale(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "scale", "layer4-lb", 2, 40, 7); err != nil {
		t.Fatalf("scale scenario: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "goodput-gbps") {
		t.Errorf("missing sweep header:\n%s", s)
	}
	if got := strings.Count(s, "\n"); got < 4 {
		t.Errorf("sweep printed %d lines, want rows for 1 and 2 devices:\n%s", got, s)
	}
}

func TestRunDrill(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "drill", "layer4-lb", 3, 40, 7); err != nil {
		t.Fatalf("drill scenario: %v", err)
	}
	s := out.String()
	for _, want := range []string{"killed:", "detected:", "recovery:", "state transitions:", "-> drained"} {
		if !strings.Contains(s, want) {
			t.Errorf("drill output missing %q:\n%s", want, s)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(&out, "bogus", "layer4-lb", 2, 40, 7); err == nil {
		t.Error("unknown scenario accepted")
	}
	if err := run(&out, "drill", "layer4-lb", 1, 40, 7); err == nil {
		t.Error("1-device drill accepted (needs survivors)")
	}
	if err := run(&out, "scale", "ghost-app", 2, 40, 7); err == nil {
		t.Error("unknown app accepted")
	}
}
