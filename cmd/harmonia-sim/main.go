// Command harmonia-sim runs a closed-loop, event-driven simulation of
// an application under a configurable offered load and prints the
// windowed statistics the RBB monitoring exposes: throughput, loss and
// queue usage over time.
//
// Usage:
//
//	harmonia-sim -app sec-gateway -offered 120 -pkt 512 -duration 200us
//	harmonia-sim -app layer4-lb -offered 60 -windows 20
package main

import (
	"flag"
	"fmt"
	"os"

	"harmonia/internal/apps"
	"harmonia/internal/ip"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

func main() {
	appName := flag.String("app", "sec-gateway", "application: sec-gateway | layer4-lb | rbb")
	offered := flag.Float64("offered", 90, "offered load in Gbps (capped by the line rate)")
	pktBytes := flag.Int("pkt", 512, "packet size in bytes")
	windows := flag.Int("windows", 15, "number of 10us stat windows to simulate")
	userClk := flag.Float64("userclk", 250, "role-side clock in MHz (app rbb only; slow clocks overload)")
	flag.Parse()

	if err := run(*appName, *offered, *pktBytes, *windows, *userClk); err != nil {
		fmt.Fprintln(os.Stderr, "harmonia-sim:", err)
		os.Exit(1)
	}
}

// trafficSink adapts an application to the generator loop.
type trafficSink struct {
	process func(now sim.Time, p *net.Packet) bool
	rx      func() (units, bytes, drops int64)
	line    float64
}

func makeSink(appName string, userClkMHz float64) (*trafficSink, error) {
	switch appName {
	case "rbb":
		// A raw Network RBB with a configurable role clock: slowing the
		// role below the line rate overloads the ingress buffer and the
		// monitoring reports tail drops.
		n, err := rbb.NewNetwork(platform.Xilinx, ip.Speed100G,
			sim.NewClock("user", userClkMHz), apps.UserWidth)
		if err != nil {
			return nil, err
		}
		n.Filter.SetEnabled(false)
		n.Director.AddTenant(0, 0, 64)
		n.Director.SetDefaultTenant(0)
		return &trafficSink{
			process: func(now sim.Time, p *net.Packet) bool {
				_, _, ok := n.Ingress(now, p)
				return ok
			},
			rx: func() (int64, int64, int64) {
				s := n.RxStats()
				return s.Units, s.Bytes, s.Drops
			},
			line: n.LineRateGbps(),
		}, nil
	case "sec-gateway":
		g, err := apps.NewSecGateway(platform.Xilinx, true)
		if err != nil {
			return nil, err
		}
		g.DeployPolicy(apps.Policy{SrcPrefix: net.IPv4(192, 168, 0, 0), PrefixLen: 16, Action: apps.Deny})
		return &trafficSink{
			process: func(now sim.Time, p *net.Packet) bool {
				ok, _ := g.Process(now, p)
				return ok
			},
			rx: func() (int64, int64, int64) {
				s := g.Net.RxStats()
				return s.Units, s.Bytes, s.Drops
			},
			line: g.Net.LineRateGbps(),
		}, nil
	case "layer4-lb":
		lb, err := apps.NewLayer4LB(platform.Xilinx, true)
		if err != nil {
			return nil, err
		}
		vip := net.IPv4(20, 0, 0, 1)
		if err := lb.AddVIP(vip, []net.IPAddr{
			net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2), net.IPv4(10, 0, 0, 3),
		}); err != nil {
			return nil, err
		}
		return &trafficSink{
			process: func(now sim.Time, p *net.Packet) bool {
				p.DstIP = vip
				_, _, ok := lb.Process(now, p)
				return ok
			},
			rx: func() (int64, int64, int64) {
				s := lb.Net.RxStats()
				return s.Units, s.Bytes, s.Drops
			},
			line: lb.Net.LineRateGbps(),
		}, nil
	default:
		return nil, fmt.Errorf("unknown app %q", appName)
	}
}

func run(appName string, offeredGbps float64, pktBytes, windows int, userClkMHz float64) error {
	if offeredGbps <= 0 || pktBytes < net.MinFrame || windows <= 0 {
		return fmt.Errorf("invalid load configuration")
	}
	sink, err := makeSink(appName, userClkMHz)
	if err != nil {
		return err
	}
	if offeredGbps > sink.line {
		// The wire cannot carry more than line rate.
		offeredGbps = sink.line
	}
	eng := sim.NewEngine()
	const window = 10 * sim.Microsecond
	horizon := sim.Time(windows) * window

	// Packet arrivals at the offered rate.
	gap := sim.Time(float64((pktBytes+net.FrameOverhead)*8) / offeredGbps * float64(sim.Nanosecond))
	if gap < 1 {
		gap = 1
	}
	stream, err := workload.Packets(workload.PacketConfig{
		Count: int(horizon/gap) + 1, Size: pktBytes, Flows: 256, Seed: 99,
	})
	if err != nil {
		return err
	}
	idx := 0
	var arrival func()
	arrival = func() {
		if idx >= len(stream) || eng.Now() >= horizon {
			return
		}
		sink.process(eng.Now(), stream[idx])
		idx++
		eng.After(gap, arrival)
	}
	eng.After(gap, arrival)

	bytesSampler, err := metrics.NewSampler(eng, window, windows, func() int64 {
		_, b, _ := sink.rx()
		return b
	})
	if err != nil {
		return err
	}
	dropSampler, err := metrics.NewSampler(eng, window, windows, func() int64 {
		_, _, d := sink.rx()
		return d
	})
	if err != nil {
		return err
	}

	eng.Run()

	fmt.Printf("%s: offered %.0f Gbps of %dB packets into a %.0fG line\n",
		appName, offeredGbps, pktBytes, sink.line)
	fmt.Printf("%-10s %14s %14s\n", "window", "goodput-Gbps", "drops/s")
	drops := dropSampler.Samples()
	for i, s := range bytesSampler.Samples() {
		fmt.Printf("%-10v %14.1f %14.3g\n", s.At, s.Rate*8/1e9, drops[i].Rate)
	}
	units, _, dropped := sink.rx()
	fmt.Printf("\ntotals: %d delivered, %d dropped (loss %.1f%%)\n",
		units, dropped, float64(dropped)/float64(units+dropped)*100)
	return nil
}
