package main

import "testing"

func TestRunAllSinks(t *testing.T) {
	for _, app := range []string{"sec-gateway", "layer4-lb", "rbb"} {
		if err := run(app, 50, 512, 3, 250); err != nil {
			t.Errorf("run(%s): %v", app, err)
		}
	}
}

func TestRunOverloadShowsLoss(t *testing.T) {
	// Slow role clock: the run must complete and report drops (checked
	// indirectly — run returns nil and prints totals).
	if err := run("rbb", 100, 1024, 4, 62.5); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run("bogus", 50, 512, 3, 250); err == nil {
		t.Error("unknown app accepted")
	}
	if err := run("rbb", 0, 512, 3, 250); err == nil {
		t.Error("zero load accepted")
	}
	if err := run("rbb", 50, 8, 3, 250); err == nil {
		t.Error("sub-minimum packet accepted")
	}
}
