// Command harmonia-bench regenerates the paper's evaluation artifacts:
// every table and figure of the motivation (§2) and evaluation (§5)
// sections, printed as labelled series and tables.
//
// Usage:
//
//	harmonia-bench            # run everything
//	harmonia-bench -list      # list experiment IDs
//	harmonia-bench -run fig10a,fig18b
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"harmonia/internal/bench"
)

// csver is implemented by figures and tables.
type csver interface{ CSV() string }

// writeCSV stores an experiment's data as <dir>/<id>.csv.
func writeCSV(dir, id string, out fmt.Stringer) error {
	c, ok := out.(csver)
	if !ok {
		return fmt.Errorf("%s: output has no CSV form", id)
	}
	return os.WriteFile(filepath.Join(dir, id+".csv"), []byte(c.CSV()), 0o644)
}

func main() {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	run := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	csvDir := flag.String("csv", "", "also write each experiment as <dir>/<id>.csv")
	flag.Parse()

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *run == "" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			e, err := bench.Lookup(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	failed := 0
	for _, e := range selected {
		out, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(out.String())
		if *csvDir != "" {
			if err := writeCSV(*csvDir, e.ID, out); err != nil {
				fmt.Fprintln(os.Stderr, err)
				failed++
			}
		}
	}
	if *ablations {
		tab, err := bench.Ablations()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			failed++
		} else {
			fmt.Println(tab.String())
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
