// Command harmoniactl deploys an application on a simulated device and
// drives it through the command-based interface — the standalone
// control tool of §3.3.3.
//
// Usage:
//
//	harmoniactl -device device-a -app sec-gateway init-all
//	harmoniactl -device device-b -app layer4-lb status
//	harmoniactl -device device-a -app retrieval table-write -table 1 -index 5 -data 10,20
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"harmonia"

	"harmonia/internal/apps"
	"harmonia/internal/uck"
)

func main() {
	deviceName := flag.String("device", "device-a", "target device")
	appName := flag.String("app", "sec-gateway", "application to deploy")
	rbbID := flag.Uint("rbb", uint(harmonia.RBBNetwork), "target RBB id")
	instID := flag.Uint("inst", 0, "target instance id")
	table := flag.Uint("table", 0, "table id for table ops")
	index := flag.Uint("index", 0, "table index for table ops")
	data := flag.String("data", "", "comma-separated 32-bit values for table-write")
	flag.Parse()

	op := flag.Arg(0)
	if op == "" {
		op = "status"
	}
	if err := run(*deviceName, *appName, op, uint8(*rbbID), uint8(*instID),
		uint32(*table), uint32(*index), *data); err != nil {
		fmt.Fprintln(os.Stderr, "harmoniactl:", err)
		os.Exit(1)
	}
}

func run(deviceName, appName, op string, rbbID, instID uint8, table, index uint32, data string) error {
	info, err := apps.Lookup(appName)
	if err != nil {
		return err
	}
	r, err := info.Role()
	if err != nil {
		return err
	}
	fw := harmonia.New()
	dep, err := fw.Deploy(deviceName, r)
	if err != nil {
		return err
	}
	dev := dep.Device()
	fmt.Printf("deployed %s on %s (bitstream %s)\n", appName, deviceName, dep.Bitstream())

	switch op {
	case "selftest":
		results, ok := dep.SelfTest()
		for _, res := range results {
			mark := "PASS"
			if !res.Pass {
				mark = "FAIL"
			}
			fmt.Printf("%-18s %s  %s\n", res.Check, mark, res.Detail)
		}
		if !ok {
			return fmt.Errorf("self-test failed")
		}
	case "modules":
		for _, m := range dev.Modules() {
			fmt.Printf("rbb=%d inst=%d %s\n", m.RBBID, m.InstanceID, m.Name)
		}
	case "init":
		if err := dev.Init(rbbID, instID); err != nil {
			return err
		}
		fmt.Printf("module %d/%d initialized\n", rbbID, instID)
	case "init-all":
		if err := dev.InitAll(); err != nil {
			return err
		}
		fmt.Printf("all %d modules initialized in %v\n", len(dev.Modules()), dev.Uptime())
	case "status":
		s, err := dev.Status(rbbID, instID)
		if err != nil {
			return err
		}
		fmt.Printf("module %d/%d status = %s\n", rbbID, instID, statusName(s))
	case "reset":
		if err := dev.Reset(rbbID, instID); err != nil {
			return err
		}
		fmt.Printf("module %d/%d reset\n", rbbID, instID)
	case "table-write":
		var values []uint32
		for _, f := range strings.Split(data, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			v, err := strconv.ParseUint(f, 0, 32)
			if err != nil {
				return fmt.Errorf("bad data value %q: %w", f, err)
			}
			values = append(values, uint32(v))
		}
		if err := dev.WriteTable(rbbID, instID, table, index, values...); err != nil {
			return err
		}
		fmt.Printf("table %d[%d] <- %v\n", table, index, values)
	case "sensors":
		temp, vccint, power, err := dev.Sensors()
		if err != nil {
			return err
		}
		fmt.Printf("temp=%.1fC vccint=%dmV power=%.1fW\n",
			float64(temp)/1000, vccint, float64(power)/1000)
	case "table-read":
		entry, err := dev.ReadTable(rbbID, instID, table, index)
		if err != nil {
			return err
		}
		fmt.Printf("table %d[%d] = %v\n", table, index, entry)
	default:
		return fmt.Errorf("unknown op %q (modules|init|init-all|status|reset|sensors|selftest|table-write|table-read)", op)
	}
	return nil
}

func statusName(s uint32) string {
	switch s {
	case uck.StatusReset:
		return "reset"
	case uck.StatusInitializing:
		return "initializing"
	case uck.StatusReady:
		return "ready"
	case uck.StatusError:
		return "error"
	default:
		return fmt.Sprintf("status(%d)", s)
	}
}
