package main

import "testing"

func TestRunOps(t *testing.T) {
	ops := []struct {
		op   string
		data string
	}{
		{"modules", ""},
		{"init", ""},
		{"init-all", ""},
		{"status", ""},
		{"reset", ""},
		{"sensors", ""},
		{"table-write", "1,2,3"},
	}
	for _, c := range ops {
		if err := run("device-a", "sec-gateway", c.op, 1, 0, 0, 0, c.data); err != nil {
			t.Errorf("op %s: %v", c.op, err)
		}
	}
}

func TestRunTableRoundTripAndErrors(t *testing.T) {
	if err := run("device-a", "sec-gateway", "table-read", 1, 0, 0, 0, ""); err == nil {
		t.Error("reading a missing table entry should fail")
	}
	if err := run("device-a", "sec-gateway", "bogus-op", 1, 0, 0, 0, ""); err == nil {
		t.Error("unknown op accepted")
	}
	if err := run("ghost", "sec-gateway", "status", 1, 0, 0, 0, ""); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run("device-a", "sec-gateway", "table-write", 1, 0, 0, 0, "xyz"); err == nil {
		t.Error("bad data value accepted")
	}
}
