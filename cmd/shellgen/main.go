// Command shellgen builds the unified shell for a device, tailors it to
// an application's demands, and prints the resource, configuration and
// adapter report — the provider-side workflow of §4 stage 2.
//
// Usage:
//
//	shellgen -device device-a -app layer4-lb
//	shellgen -device device-d -app retrieval -scripts
package main

import (
	"flag"
	"fmt"
	"os"

	"harmonia/internal/adapter"
	"harmonia/internal/apps"
	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/platform"
	"harmonia/internal/shell"
)

// exportCatalog writes the vendor IP catalog of the device's vendor as
// packaged JSON (the IP-XACT-style interchange form).
func exportCatalog(deviceName, path string) error {
	dev, err := platform.Lookup(deviceName)
	if err != nil {
		return err
	}
	lib, err := ip.Catalog(dev.Vendor)
	if err != nil {
		return err
	}
	data, err := hdl.ExportLibrary(lib)
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("exported %d modules to %s\n", lib.Len(), path)
	return nil
}

func main() {
	deviceName := flag.String("device", "device-a", "target device (device-a..device-d)")
	appName := flag.String("app", "sec-gateway", "application whose demands tailor the shell")
	scripts := flag.Bool("scripts", false, "also print the generated adapter scripts")
	exportLib := flag.String("export-lib", "", "write the device vendor's IP catalog as JSON to this file")
	flag.Parse()

	if *exportLib != "" {
		if err := exportCatalog(*deviceName, *exportLib); err != nil {
			fmt.Fprintln(os.Stderr, "shellgen:", err)
			os.Exit(1)
		}
	}
	if err := run(*deviceName, *appName, *scripts); err != nil {
		fmt.Fprintln(os.Stderr, "shellgen:", err)
		os.Exit(1)
	}
}

func run(deviceName, appName string, scripts bool) error {
	dev, err := platform.Lookup(deviceName)
	if err != nil {
		return err
	}
	info, err := apps.Lookup(appName)
	if err != nil {
		return err
	}
	unified, err := shell.BuildUnified(dev)
	if err != nil {
		return err
	}
	tailored, err := unified.Tailor(info.Demands)
	if err != nil {
		return err
	}
	rep, err := shell.Report(unified, tailored)
	if err != nil {
		return err
	}

	fmt.Printf("shell for %s on %s (%s %s)\n", appName, dev.Name, dev.Vendor, dev.Chip.Name)
	fmt.Printf("components: %v\n\n", tailored.ComponentNames())
	fmt.Printf("%-12s %12s %12s %9s\n", "resource", "unified", "tailored", "saving")
	for _, kind := range hdl.ResourceKinds {
		u, _ := rep.UnifiedRes.Get(kind)
		t, _ := rep.TailoredRes.Get(kind)
		fmt.Printf("%-12s %12d %12d %8.1f%%\n", kind, u, t, rep.Savings[kind]*100)
	}
	fmt.Printf("\nconfiguration items: %d native -> %d role-oriented (%.1fx reduction)\n",
		rep.NativeConfigs, rep.RoleConfigs, rep.ConfigRatio)
	fmt.Printf("shell occupies %.1f%% of %s LUTs\n",
		tailored.Utilization()["LUT"]*100, dev.Chip.Name)

	if scripts {
		devAd, err := adapter.NewDeviceAdapter(dev)
		if err != nil {
			return err
		}
		venAd, err := adapter.NewVendorAdapter(dev)
		if err != nil {
			return err
		}
		fmt.Println("\n--- device adapter ---")
		fmt.Print(devAd.Script())
		fmt.Println("--- vendor adapter ---")
		fmt.Print(venAd.Script())
	}
	return nil
}
