package main

import (
	"path/filepath"
	"testing"
)

func TestRunAllAppsAndDevices(t *testing.T) {
	for _, dev := range []string{"device-a"} {
		for _, app := range []string{"sec-gateway", "layer4-lb", "retrieval", "board-test"} {
			if err := run(dev, app, true); err != nil {
				t.Errorf("run(%s, %s): %v", dev, app, err)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("ghost", "sec-gateway", false); err == nil {
		t.Error("unknown device accepted")
	}
	if err := run("device-a", "ghost", false); err == nil {
		t.Error("unknown app accepted")
	}
	// Demands the device cannot meet.
	if err := run("device-c", "retrieval", false); err == nil {
		t.Error("HBM app on memory-less device accepted")
	}
}

func TestExportCatalog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "lib.json")
	if err := exportCatalog("device-d", path); err != nil {
		t.Fatal(err)
	}
	if err := exportCatalog("ghost", path); err == nil {
		t.Error("unknown device accepted")
	}
}
