// Sec-Gateway example: the DCI access-control application of §5.1.
// Deploys the gateway role, programs deny policies, and pushes a mixed
// traffic workload through the functional datapath, reporting filtering
// outcomes, throughput, and the Harmonia-vs-native latency delta.
//
//	go run ./examples/secgateway
package main

import (
	"fmt"
	"log"

	"harmonia"

	"harmonia/internal/apps"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

func main() {
	// Deploy the role through the framework (provider-side flow).
	info, err := apps.Lookup("sec-gateway")
	if err != nil {
		log.Fatal(err)
	}
	role, err := info.Role()
	if err != nil {
		log.Fatal(err)
	}
	fw := harmonia.New()
	dep, err := fw.Deploy("device-a", role)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", dep.Project().Name, "bitstream", dep.Bitstream())

	// Bring up the functional datapath and deploy policies.
	gw, err := apps.NewSecGateway(platform.Xilinx, true)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range []apps.Policy{
		{SrcPrefix: net.IPv4(192, 168, 0, 0), PrefixLen: 16, Action: apps.Deny},
		{SrcPrefix: net.IPv4(10, 66, 0, 0), PrefixLen: 16, Action: apps.Deny},
	} {
		if err := gw.DeployPolicy(p); err != nil {
			log.Fatal(err)
		}
	}

	// Traffic: mostly benign flows plus injected malicious sources.
	pkts, err := workload.Packets(workload.PacketConfig{
		Count: 5000, Size: 512, Flows: 128, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, p := range pkts {
		if i%10 == 0 {
			p.SrcIP = net.IPv4(192, 168, byte(i>>8), byte(i)) // malicious
		}
	}

	var done sim.Time
	var lats metrics.Latencies
	for _, p := range pkts {
		ok, d := gw.Process(0, p)
		if ok {
			lats.Add(d)
		}
		if d > done {
			done = d
		}
	}

	fmt.Printf("processed %d packets: %d allowed, %d denied\n",
		len(pkts), gw.Allowed(), gw.Denied())
	fmt.Printf("throughput: %.1f Gbps (line rate %v Gbps, 512B effective %.1f)\n",
		metrics.Gbps(int64(len(pkts)*512), done), gw.Net.LineRateGbps(),
		net.EffectiveGbps(gw.Net.LineRateGbps(), 512))
	fmt.Printf("device latency: p50=%v p99=%v\n", lats.Percentile(50), lats.Percentile(99))
	fmt.Printf("wrapper adds %v per direction — negligible vs microsecond e2e\n",
		gw.Net.WrapperLatency())
}
