// Multi-tenant example: the §6 discussion made concrete. Four tenants
// share one FPGA through partial-reconfiguration slots, flow-director
// steering and isolated host queues; one tenant is evicted and replaced
// while the others keep serving traffic.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"harmonia/internal/apps"
	"harmonia/internal/hdl"
	"harmonia/internal/ip"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
	"harmonia/internal/tenancy"
)

func main() {
	clk := apps.UserClock()
	network, err := rbb.NewNetwork(platform.Xilinx, ip.Speed100G, clk, apps.UserWidth)
	if err != nil {
		log.Fatal(err)
	}
	host, err := rbb.NewHost(platform.Xilinx, 4, 16, ip.SGDMA, clk, apps.UserWidth)
	if err != nil {
		log.Fatal(err)
	}
	mgr, err := tenancy.NewManager(tenancy.DefaultSlotConfig(), network.Director, host)
	if err != nil {
		log.Fatal(err)
	}

	logic := hdl.Resources{LUT: 60_000, REG: 90_000, BRAM: 100, DSP: 128}
	var tenants []*tenancy.Tenant
	for i := 0; i < 3; i++ {
		vip := net.IPv4(20, 0, 0, byte(i+1))
		t, err := mgr.Admit(0, fmt.Sprintf("tenant-%c", 'a'+i), logic, []net.IPAddr{vip})
		if err != nil {
			log.Fatal(err)
		}
		tenants = append(tenants, t)
		fmt.Printf("admitted %-9s slot=%d queues=[%d,%d) ready at %v\n",
			t.Name, t.Slot, t.QueueLo, t.QueueHi, t.ReadyAt)
	}
	fmt.Printf("free slots: %d\n\n", mgr.FreeSlots())

	// Route traffic: every flow lands inside its tenant's queue range.
	perTenant := map[int]int{}
	for port := uint16(1000); port < 1600; port++ {
		vip := net.IPv4(20, 0, 0, byte(port%3)+1)
		p := &net.Packet{DstIP: vip, SrcIP: net.IPv4(8, 8, 8, 8),
			Proto: net.ProtoTCP, SrcPort: port, DstPort: 443, WireBytes: 256}
		_, tn, err := mgr.Route(p)
		if err != nil {
			log.Fatal(err)
		}
		perTenant[tn.ID]++
	}
	for _, t := range mgr.Tenants() {
		fmt.Printf("%-9s received %d flows, all within queues [%d,%d)\n",
			t.Name, perTenant[t.ID], t.QueueLo, t.QueueHi)
	}

	// Evict tenant-b; tenant-a and tenant-c continue undisturbed.
	evicted := tenants[1]
	done, err := mgr.Evict(sim.Second, evicted.ID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nevicted %s (slot blanked by %v)\n", evicted.Name, done)
	p := &net.Packet{DstIP: net.IPv4(20, 0, 0, 1), SrcIP: net.IPv4(9, 9, 9, 9),
		Proto: net.ProtoTCP, SrcPort: 7, DstPort: 443}
	if _, tn, err := mgr.Route(p); err != nil {
		log.Fatal(err)
	} else {
		fmt.Printf("%s still serving (flow routed to its queue range)\n", tn.Name)
	}

	// A new tenant takes the freed slot with fresh queues.
	d, err := mgr.Admit(done, "tenant-d", logic, []net.IPAddr{net.IPv4(20, 0, 0, 9)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("admitted %-9s into freed slot %d, queues [%d,%d)\n",
		d.Name, d.Slot, d.QueueLo, d.QueueHi)
}
