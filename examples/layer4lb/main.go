// Layer-4 LB example: the stateful load balancer of §5.1, demonstrated
// as a cross-vendor migration: the identical role deploys on a Xilinx
// device and an Intel device with zero role changes, and the host
// software reuses the same command sequences on both.
//
//	go run ./examples/layer4lb
package main

import (
	"fmt"
	"log"

	"harmonia"

	"harmonia/internal/apps"
	"harmonia/internal/hostsw"
	"harmonia/internal/metrics"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

func main() {
	info, err := apps.Lookup("layer4-lb")
	if err != nil {
		log.Fatal(err)
	}
	fw := harmonia.New()

	// The same role object deploys unchanged on both vendors' devices.
	// device-a carries HBM; device-b is the in-house Xilinx-convention
	// card. For device-d (Intel, DDR only) the demands swap HBM for DDR
	// — a one-line demand change, not a role change.
	for _, target := range []struct {
		device  string
		demands harmonia.Demands
	}{
		{"device-a", info.Demands},
		{"device-d", harmonia.Demands{
			Network: info.Demands.Network,
			Memory:  []harmonia.MemoryDemand{{Kind: "ddr4"}},
			Host:    info.Demands.Host,
		}},
	} {
		role, err := harmonia.NewRole(info.Name, target.demands, &harmonia.LogicModule{
			Name: info.Name + "-logic", Res: info.RoleRes,
		})
		if err != nil {
			log.Fatal(err)
		}
		dep, err := fw.Deploy(target.device, role)
		if err != nil {
			log.Fatal(err)
		}
		if err := dep.Device().InitAll(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("deployed on %-8s bitstream=%s shell=%v\n",
			target.device, dep.Bitstream(), dep.Shell().ComponentNames())
	}

	// The command sequences the host issues are identical across the
	// two platforms; the register choreography they replace is not.
	rep, err := hostsw.MigrationCost(platform.DeviceA(), platform.DeviceD(),
		[]string{"mac", "pcie-dma", "pcie-phy", "ddr4", "mgmt", "uck"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("migrating A->D: %d register mods vs %d command mods (%.0fx reduction)\n\n",
		rep.RegMods, rep.CmdMods, rep.Ratio)

	// Run the functional balancer: one VIP, four backends, stateful
	// flow pinning that survives a backend drain.
	lb, err := apps.NewLayer4LB(platform.Xilinx, true)
	if err != nil {
		log.Fatal(err)
	}
	vip := net.IPv4(20, 0, 0, 1)
	backends := []net.IPAddr{
		net.IPv4(10, 0, 0, 1), net.IPv4(10, 0, 0, 2),
		net.IPv4(10, 0, 0, 3), net.IPv4(10, 0, 0, 4),
	}
	if err := lb.AddVIP(vip, backends); err != nil {
		log.Fatal(err)
	}

	pkts, err := workload.Packets(workload.PacketConfig{
		Count: 8000, Size: 512, Flows: 256, VIPs: []net.IPAddr{vip}, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	perBackend := map[net.IPAddr]int{}
	var done sim.Time
	for i, p := range pkts {
		if i == len(pkts)/2 {
			// Drain a backend mid-run: established flows must stay put.
			if err := lb.RemoveBackend(vip, backends[0]); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("drained backend %v at packet %d\n", backends[0], i)
		}
		b, d, ok := lb.Process(0, p)
		if !ok {
			continue
		}
		perBackend[b]++
		if d > done {
			done = d
		}
	}
	st := lb.Stats()
	fmt.Printf("flows: %d established (%d table hits, %d new)\n", lb.Connections(), st.Hits, st.Misses)
	for _, b := range backends {
		fmt.Printf("  backend %v: %6d packets\n", b, perBackend[b])
	}
	fmt.Printf("throughput: %.1f Gbps\n", metrics.Gbps(int64(len(pkts)*512), done))
}
