// Quickstart: deploy a minimal role on device A, bring the shell up
// through the command-based interface, program a table and read stats.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"harmonia"
)

func main() {
	// 1. The framework comes preloaded with the paper's devices A-D.
	fw := harmonia.New()
	fmt.Println("devices:", fw.Devices())

	// 2. Describe the role: a 100G bump-in-the-wire function needing
	// networking and bulk host DMA, no external memory.
	role, err := harmonia.NewRole("hello-fpga",
		harmonia.Demands{
			Network: &harmonia.NetworkDemand{Gbps: 100, Filter: true},
			Host:    &harmonia.HostDemand{Bulk: true, Queues: 8},
		},
		&harmonia.LogicModule{
			Name: "hello-logic",
			Res:  harmonia.Resources{LUT: 20_000, REG: 30_000, BRAM: 40},
		})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Deploy: adapters, unified shell, hierarchical tailoring,
	// dependency inspection, compilation, packaging — one call.
	dep, err := fw.Deploy("device-a", role)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("bitstream:", dep.Bitstream())
	fmt.Println("shell components:", dep.Shell().ComponentNames())
	fmt.Printf("shell LUT occupancy: %.1f%%\n", dep.Shell().Utilization()["LUT"]*100)

	// 4. Control the running instance with commands instead of
	// register choreography.
	dev := dep.Device()
	if err := dev.InitAll(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initialized %d modules in %v of simulated time\n",
		len(dev.Modules()), dev.Uptime())

	// 5. Program a match table on the network RBB and read it back.
	if err := dev.WriteTable(harmonia.RBBNetwork, 0, 0, 1, 0xC0A80001, 24); err != nil {
		log.Fatal(err)
	}
	entry, err := dev.ReadTable(harmonia.RBBNetwork, 0, 0, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table entry: %#x\n", entry)

	// 6. Monitoring flows through the same interface.
	if err := dev.SetStatsSource(harmonia.RBBNetwork, 0, func() []uint32 {
		return []uint32{1_000_000, 512} // packets, drops
	}); err != nil {
		log.Fatal(err)
	}
	stats, err := dev.Stats(harmonia.RBBNetwork, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network stats: packets=%d drops=%d\n", stats[0], stats[1])
}
