// RDMA example: the flow-level transport the Network RBB provides for
// RDMA-class applications. Two queue pairs connect over lossy 100G
// links; one-sided WRITEs and READs and two-sided SEND/RECV move real
// bytes, exactly once and in order, even with frames dropped on the
// wire.
//
//	go run ./examples/rdma
package main

import (
	"bytes"
	"fmt"
	"log"

	"harmonia/internal/mem"
	"harmonia/internal/net"
	"harmonia/internal/sim"
)

func main() {
	// Two endpoints; the A->B direction drops every 9th frame.
	a, err := net.NewQP(1, mem.NewStore(), net.NewLossyLink("a->b", 100, sim.Microsecond, 9), 4096)
	if err != nil {
		log.Fatal(err)
	}
	b, err := net.NewQP(2, mem.NewStore(), net.NewLossyLink("b->a", 100, sim.Microsecond, 0), 4096)
	if err != nil {
		log.Fatal(err)
	}
	if err := net.Connect(a, b); err != nil {
		log.Fatal(err)
	}

	// One-sided WRITE: 1MB lands in B's memory byte-exact despite loss.
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	a.Memory().Write(0, payload)
	done, err := a.Post(0, net.WorkRequest{
		ID: 1, Verb: net.VerbWrite, Bytes: len(payload), RemoteAddr: 0x10_0000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(b.Memory().Read(0x10_0000, len(payload)), payload) {
		log.Fatal("remote memory corrupted")
	}
	gbps := float64(len(payload)*8) / done.Nanoseconds()
	fmt.Printf("RDMA WRITE: 1MB in %v (%.1f Gbps) with %d retransmissions — data verified\n",
		done, gbps, a.Retransmissions())

	// One-sided READ: fetch it back.
	_, err = a.Post(done, net.WorkRequest{
		ID: 2, Verb: net.VerbRead, Bytes: 64, LocalAddr: 0x20_0000, RemoteAddr: 0x10_0000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RDMA READ: fetched %x...\n", a.Memory().Read(0x20_0000, 8))

	// Two-sided SEND/RECV with completion queues.
	b.PostRecv(0x30_0000, 256)
	msg := []byte("send/recv over the reliable transport")
	a.Memory().Write(0x40_0000, msg)
	if _, err := a.Post(done, net.WorkRequest{
		ID: 3, Verb: net.VerbSend, Bytes: len(msg), LocalAddr: 0x40_0000,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SEND delivered: %q\n", b.Memory().Read(0x30_0000, len(msg)))
	for _, c := range a.Poll() {
		fmt.Printf("  sender CQE: wr=%d verb=%s status=%d at %v\n", c.ID, c.Verb, c.Status, c.At)
	}
	for _, c := range b.Poll() {
		fmt.Printf("  receiver CQE: wr=%d verb=%s status=%d at %v\n", c.ID, c.Verb, c.Status, c.At)
	}
}
