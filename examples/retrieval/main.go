// Retrieval example: the embedding-retrieval accelerator of §5.1
// (look-aside architecture). Loads a corpus into the Memory RBB,
// answers top-K queries with verified results, and sweeps corpus size
// to show the QPS shape of Fig. 17d.
//
//	go run ./examples/retrieval
package main

import (
	"fmt"
	"log"

	"harmonia"

	"harmonia/internal/apps"
	"harmonia/internal/platform"
	"harmonia/internal/workload"
)

func main() {
	// Provider-side: deploy the role (HBM + DDR + host, no network).
	info, err := apps.Lookup("retrieval")
	if err != nil {
		log.Fatal(err)
	}
	role, err := info.Role()
	if err != nil {
		log.Fatal(err)
	}
	fw := harmonia.New()
	dep, err := fw.Deploy("device-a", role)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("deployed:", dep.Project().Name)
	fmt.Println("tailored shell (no network RBB):", dep.Shell().ComponentNames())

	// User-side: the functional engine with 64-dim embeddings and 32
	// DSP lanes.
	const dim, lanes, k = 64, 32, 10
	r, err := apps.NewRetrieval(platform.Xilinx, dim, lanes, true)
	if err != nil {
		log.Fatal(err)
	}
	corpus := workload.Embeddings(5000, dim, 123)
	if _, err := r.LoadCorpus(0, corpus); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus loaded: %d rows x %dB\n", len(corpus), r.RowBytes())

	query := workload.Embeddings(1, dim, 999)[0].Vec
	ids, done, err := r.Query(0, query, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-%d ids: %v\n", k, ids)
	fmt.Printf("query latency: %v (device time)\n", done)

	// Verify against brute force.
	bestID, bestScore := uint32(0), float32(-1e30)
	for _, row := range corpus {
		if s := workload.Dot(query, row.Vec); s > bestScore {
			bestID, bestScore = row.ID, s
		}
	}
	if ids[0] != bestID {
		log.Fatalf("top-1 mismatch: engine %d, brute force %d", ids[0], bestID)
	}
	fmt.Printf("top-1 verified against brute force (id=%d score=%.3f)\n\n", bestID, bestScore)

	// The Fig. 17d sweep: QPS vs corpus size (analytic timing model for
	// corpora too large to materialize).
	fmt.Println("corpus-items    QPS")
	for _, exp := range []int{3, 5, 7, 9} {
		items := int64(1)
		for i := 0; i < exp; i++ {
			items *= 10
		}
		fmt.Printf("10^%-10d %10.1f\n", exp, r.QPS(items))
	}
}
