package harmonia

// Soak tests: long deterministic runs with invariants checked
// throughout. Skipped under -short.

import (
	"testing"

	"harmonia/internal/apps"
	"harmonia/internal/mem"
	"harmonia/internal/net"
	"harmonia/internal/platform"
	"harmonia/internal/sim"
	"harmonia/internal/workload"
)

func TestSoakLBUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// 100k packets of zipf traffic while the backend pool churns every
	// 10k packets: established flows must never move, counters must
	// balance, and every selected backend must be a pool member at
	// selection time.
	lb, err := apps.NewLayer4LB(platform.Xilinx, true)
	if err != nil {
		t.Fatal(err)
	}
	vip := net.IPv4(20, 0, 0, 1)
	backends := make([]net.IPAddr, 8)
	for i := range backends {
		backends[i] = net.IPv4(10, 0, 0, byte(i+1))
	}
	if err := lb.AddVIP(vip, backends); err != nil {
		t.Fatal(err)
	}
	flows, err := workload.ZipfFlows(100_000, 4096, 1.2, 21)
	if err != nil {
		t.Fatal(err)
	}
	pinned := map[net.FlowKey]net.IPAddr{}
	removed := map[net.IPAddr]bool{}
	nextRemove := 0
	for i, f := range flows {
		if i > 0 && i%10_000 == 0 && nextRemove < 4 {
			victim := backends[nextRemove]
			if err := lb.RemoveBackend(vip, victim); err != nil {
				t.Fatal(err)
			}
			removed[victim] = true
			nextRemove++
		}
		p := &net.Packet{
			SrcIP: net.IPv4(1, 2, byte(f>>8), byte(f)), DstIP: vip,
			Proto: net.ProtoTCP, SrcPort: uint16(f), DstPort: 80, WireBytes: 256,
		}
		b, _, ok := lb.Process(0, p)
		if !ok {
			t.Fatalf("packet %d dropped", i)
		}
		key := p.Flow()
		if prev, seen := pinned[key]; seen {
			if b != prev {
				t.Fatalf("packet %d: established flow moved from %v to %v", i, prev, b)
			}
		} else {
			pinned[key] = b
			if removed[b] {
				t.Fatalf("packet %d: new flow sent to drained backend %v", i, b)
			}
		}
	}
	st := lb.Stats()
	if st.Hits+st.Misses != 100_000 || st.NoVIP != 0 {
		t.Errorf("counters: hits=%d misses=%d noVIP=%d", st.Hits, st.Misses, st.NoVIP)
	}
	if lb.Connections() != int(st.Misses) {
		t.Errorf("connections %d != misses %d", lb.Connections(), st.Misses)
	}
}

func TestSoakMemoryConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// 50k randomized writes then full verification: the memory RBB with
	// cache + interleaving must never lose or corrupt a byte.
	m, err := apps.NewRetrieval(platform.Xilinx, 16, 8, true)
	if err != nil {
		t.Fatal(err)
	}
	dev := m.Mem.Device()
	type wr struct {
		addr int64
		val  byte
	}
	gen, err := workload.NewAccessGen(workload.Random, 64, 1<<26, 33)
	if err != nil {
		t.Fatal(err)
	}
	shadow := map[int64]byte{}
	var writes []wr
	var now sim.Time
	for i := 0; i < 50_000; i++ {
		addr := gen.Next()
		val := byte(i)
		buf := make([]byte, 64)
		for j := range buf {
			buf[j] = val
		}
		now = m.Mem.Write(now, addr, buf)
		shadow[addr] = val
		writes = append(writes, wr{addr, val})
	}
	_ = writes
	for addr, val := range shadow {
		data := dev.Peek(addr, 64)
		for j, got := range data {
			if got != val {
				t.Fatalf("addr %d byte %d = %d, want %d", addr, j, got, val)
			}
		}
	}
	if now <= 0 {
		t.Error("soak consumed no simulated time")
	}
}

func TestSoakRDMABidirectional(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	// Sustained bidirectional RDMA over lossy links: every transfer
	// delivered exactly once, data verified on both sides.
	a, err := net.NewQP(1, mem.NewStore(), net.NewLossyLink("a", 100, sim.Microsecond, 11), 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.NewQP(2, mem.NewStore(), net.NewLossyLink("b", 100, sim.Microsecond, 7), 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(a, b); err != nil {
		t.Fatal(err)
	}
	const rounds = 300
	var ta, tb sim.Time
	for i := 0; i < rounds; i++ {
		pa := []byte{byte(i), byte(i + 1), byte(i + 2), byte(i + 3)}
		a.Memory().Write(int64(i)*8, pa)
		ta, err = a.Post(ta, net.WorkRequest{
			ID: uint64(i), Verb: net.VerbWrite, Bytes: 4,
			LocalAddr: int64(i) * 8, RemoteAddr: 1<<20 + int64(i)*8,
		})
		if err != nil {
			t.Fatal(err)
		}
		pb := []byte{byte(i * 3)}
		b.Memory().Write(1<<24+int64(i), pb)
		tb, err = b.Post(tb, net.WorkRequest{
			ID: uint64(i), Verb: net.VerbWrite, Bytes: 1,
			LocalAddr: 1<<24 + int64(i), RemoteAddr: 1<<25 + int64(i),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < rounds; i++ {
		got := b.Memory().Read(1<<20+int64(i)*8, 4)
		if got[0] != byte(i) || got[3] != byte(i+3) {
			t.Fatalf("round %d: a->b data corrupted: %v", i, got)
		}
		if a.Memory().Read(1<<25+int64(i), 1)[0] != byte(i*3) {
			t.Fatalf("round %d: b->a data corrupted", i)
		}
	}
	if a.Retransmissions() == 0 || b.Retransmissions() == 0 {
		t.Error("lossy links produced no retransmissions")
	}
}
