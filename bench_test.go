package harmonia

// Benchmarks regenerating every paper table and figure (go test
// -bench=.). Each BenchmarkFigXX/BenchmarkTableX target runs the
// corresponding experiment from internal/bench; the first iteration's
// output is what cmd/harmonia-bench prints and EXPERIMENTS.md records.
// Ablation benchmarks at the bottom quantify the design choices
// DESIGN.md calls out.

import (
	"testing"

	"harmonia/internal/bench"
	"harmonia/internal/ip"
	"harmonia/internal/pcie"
	"harmonia/internal/platform"
	"harmonia/internal/rbb"
	"harmonia/internal/sim"
	"harmonia/internal/wrapper"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := bench.Lookup(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		out, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if out.String() == "" {
			b.Fatal("empty experiment output")
		}
	}
}

func BenchmarkFig03aDevWorkload(b *testing.B)      { runExperiment(b, "fig3a") }
func BenchmarkFig03bVendorDiffs(b *testing.B)      { runExperiment(b, "fig3b") }
func BenchmarkFig03cFleetGrowth(b *testing.B)      { runExperiment(b, "fig3c") }
func BenchmarkFig03dInitSequences(b *testing.B)    { runExperiment(b, "fig3d") }
func BenchmarkFig10aMACWrapper(b *testing.B)       { runExperiment(b, "fig10a") }
func BenchmarkFig10bPCIeWrapper(b *testing.B)      { runExperiment(b, "fig10b") }
func BenchmarkFig10cDDRWrapper(b *testing.B)       { runExperiment(b, "fig10c") }
func BenchmarkFig11ShellTailoring(b *testing.B)    { runExperiment(b, "fig11") }
func BenchmarkFig12RoleConfigs(b *testing.B)       { runExperiment(b, "fig12") }
func BenchmarkFig13SoftwareMods(b *testing.B)      { runExperiment(b, "fig13") }
func BenchmarkFig14RBBReuse(b *testing.B)          { runExperiment(b, "fig14") }
func BenchmarkFig15AppReuse(b *testing.B)          { runExperiment(b, "fig15") }
func BenchmarkFig16Overheads(b *testing.B)         { runExperiment(b, "fig16") }
func BenchmarkFig17aSecGateway(b *testing.B)       { runExperiment(b, "fig17a") }
func BenchmarkFig17bLayer4LB(b *testing.B)         { runExperiment(b, "fig17b") }
func BenchmarkFig17cHostNetwork(b *testing.B)      { runExperiment(b, "fig17c") }
func BenchmarkFig17dRetrieval(b *testing.B)        { runExperiment(b, "fig17d") }
func BenchmarkFig18aFrameworkShells(b *testing.B)  { runExperiment(b, "fig18a") }
func BenchmarkFig18bMatMul(b *testing.B)           { runExperiment(b, "fig18b") }
func BenchmarkFig18cDatabaseAccess(b *testing.B)   { runExperiment(b, "fig18c") }
func BenchmarkFig18dTCPTransmission(b *testing.B)  { runExperiment(b, "fig18d") }
func BenchmarkFleetScaleOut(b *testing.B)          { runExperiment(b, "fleet1") }
func BenchmarkFleetRecovery(b *testing.B)          { runExperiment(b, "fleet2") }
func BenchmarkFleetControlPlane(b *testing.B)      { runExperiment(b, "fleet3") }
func BenchmarkTable1Capabilities(b *testing.B)     { runExperiment(b, "table1") }
func BenchmarkTable2Setup(b *testing.B)            { runExperiment(b, "table2") }
func BenchmarkTable3DeviceSupport(b *testing.B)    { runExperiment(b, "table3") }
func BenchmarkTable4ConfigInterfaces(b *testing.B) { runExperiment(b, "table4") }

// Ablation: hot cache on vs off for repeated 64B reads.
func BenchmarkAblationHotCache(b *testing.B) {
	for _, on := range []struct {
		name string
		en   bool
	}{{"on", true}, {"off", false}} {
		b.Run(on.name, func(b *testing.B) {
			m, err := rbb.NewMemory(platform.Xilinx, ip.DDR4Mem, sim.NewClock("u", 250), 512)
			if err != nil {
				b.Fatal(err)
			}
			m.Cache.SetEnabled(on.en)
			var now sim.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, now = m.Read(now, int64(i%64)*64, 64)
			}
			b.ReportMetric(now.Nanoseconds()/float64(b.N), "sim-ns/op")
		})
	}
}

// Ablation: address interleaving on vs off for a sequential stream.
func BenchmarkAblationInterleaving(b *testing.B) {
	for _, on := range []struct {
		name string
		en   bool
	}{{"on", true}, {"off", false}} {
		b.Run(on.name, func(b *testing.B) {
			m, err := rbb.NewMemory(platform.Xilinx, ip.DDR4Mem, sim.NewClock("u", 250), 512)
			if err != nil {
				b.Fatal(err)
			}
			m.SetInterleaving(on.en)
			var last sim.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if d := m.Device().Access(0, int64(i)*256, 256, false); d > last {
					last = d
				}
			}
			b.ReportMetric(last.Nanoseconds()/float64(b.N), "sim-ns/op")
		})
	}
}

// Ablation: active-list vs full-scan DMA queue scheduling.
func BenchmarkAblationQueueScheduling(b *testing.B) {
	for _, mode := range []struct {
		name string
		m    pcie.SchedulerMode
	}{{"active-list", pcie.ActiveList}, {"full-scan", pcie.FullScan}} {
		b.Run(mode.name, func(b *testing.B) {
			link, err := pcie.NewLink("l", 4, 16)
			if err != nil {
				b.Fatal(err)
			}
			cfg := pcie.DefaultEngineConfig()
			cfg.Mode = mode.m
			engine, err := pcie.NewEngine(link, cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := engine.Post(0, 777, pcie.DeviceToHost, 64); err != nil {
					b.Fatal(err)
				}
				engine.Step(0)
			}
			b.ReportMetric(float64(engine.SchedulingTime())/float64(b.N), "sched-ps/op")
		})
	}
}

// Ablation: control-queue isolation on vs off under data backlog.
func BenchmarkAblationControlQueue(b *testing.B) {
	for _, iso := range []struct {
		name string
		en   bool
	}{{"isolated", true}, {"shared", false}} {
		b.Run(iso.name, func(b *testing.B) {
			link, err := pcie.NewLink("l", 4, 16)
			if err != nil {
				b.Fatal(err)
			}
			cfg := pcie.DefaultEngineConfig()
			cfg.ControlQueue = iso.en
			engine, err := pcie.NewEngine(link, cfg)
			if err != nil {
				b.Fatal(err)
			}
			var worst sim.Time
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < 8; j++ {
					engine.Post(0, 3, pcie.DeviceToHost, 4096)
				}
				engine.PostControl(0, 64)
				done, _ := engine.Step(0)
				if done > worst {
					worst = done
				}
				engine.Drain(0)
			}
			b.ReportMetric(float64(worst), "first-dispatch-ps")
		})
	}
}

// Ablation: pipelined width conversion vs store-and-forward wrapper.
func BenchmarkAblationPipelinedWrapper(b *testing.B) {
	clk := sim.NewClock("c", 322)
	b.Run("pipelined", func(b *testing.B) {
		d, err := wrapper.NewDataPath("dp", clk, 512, clk, 512)
		if err != nil {
			b.Fatal(err)
		}
		var done sim.Time
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done = d.Transfer(0, 1024)
		}
		b.ReportMetric(done.Nanoseconds()/float64(b.N), "sim-ns/op")
	})
	b.Run("store-and-forward", func(b *testing.B) {
		saf := sim.NewStoreAndForward("saf", clk, wrapper.PipelineDepth+16)
		var done sim.Time
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			done = saf.Issue(0)
		}
		b.ReportMetric(done.Nanoseconds()/float64(b.N), "sim-ns/op")
	})
}
